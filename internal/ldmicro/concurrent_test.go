package ldmicro_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/ldmicro"
	"repro/internal/lld"
	"repro/internal/netld/client"
	"repro/internal/netld/faultconn"
	"repro/internal/netld/server"
)

// newBenchLLD builds an in-process LLD on a 64-MB simulated disk, sized so
// the concurrent working set plus rewrite churn never exhausts space.
func newBenchLLD(tb testing.TB) *lld.LLD {
	tb.Helper()
	d := disk.New(disk.DefaultConfig(64 << 20))
	o := lld.DefaultOptions()
	o.CompressBandwidth = 0 // wall-time benchmarks; no virtual CPU charge
	if err := lld.Format(d, o); err != nil {
		tb.Fatal(err)
	}
	l, err := lld.Open(d, o)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { l.Shutdown(true) })
	return l
}

// newBenchNetOpen starts an LLD-backed netld server on loopback TCP and
// returns an OpenFunc that dials a fresh connection per client. A nonzero
// linkDelay wraps each connection with a deterministic per-I/O sleep of
// mean linkDelay/2, modeling a latency-bearing link: each client's RPCs
// serialize on its own slow connection, so added clients hide latency by
// overlapping round trips — the regime the paper's client/server split
// (LD on a dedicated server machine) actually runs in.
func newBenchNetOpen(tb testing.TB, linkDelay time.Duration) ldmicro.OpenFunc {
	tb.Helper()
	l := newBenchLLD(tb)
	srv := server.New(server.Config{Disk: l})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Skipf("loopback unavailable: %v", err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	tb.Cleanup(func() { srv.Close() })
	var seed int64
	return func() (ld.Disk, func() error, error) {
		seed++
		mySeed := seed
		dial := func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			// The first open is RunConcurrent's setup handle; it gets a
			// fast link so working-set preparation stays out of the
			// measured path's latency regime.
			if err != nil || linkDelay == 0 || mySeed == 1 {
				return c, err
			}
			return faultconn.Wrap(c, faultconn.Config{
				Seed:      mySeed,
				DelayProb: 1,
				MaxDelay:  linkDelay,
			}), nil
		}
		c, err := client.New(dial, client.Options{})
		if err != nil {
			return nil, nil, err
		}
		return c, c.Close, nil
	}
}

// TestRunConcurrentMixes runs every standard mix briefly in-process and
// checks the operation accounting and payload verification hold up.
func TestRunConcurrentMixes(t *testing.T) {
	l := newBenchLLD(t)
	open := ldmicro.SingleHandle(l)
	for _, mix := range ldmicro.StandardMixes() {
		cfg := ldmicro.ConcurrentConfig{
			Clients:      4,
			Blocks:       64,
			OpsPerClient: 200,
			ReadFraction: mix.ReadFraction,
			Compress:     mix.Compress,
		}
		r, err := ldmicro.RunConcurrent(mix.Name, open, cfg)
		if err != nil {
			t.Fatalf("%s: %v", mix.Name, err)
		}
		if got, want := r.Ops(), int64(4*200); got != want {
			t.Errorf("%s: %d ops, want %d", mix.Name, got, want)
		}
		if r.Reads == 0 || (mix.ReadFraction < 1 && r.Writes == 0) {
			t.Errorf("%s: degenerate mix: %d reads, %d writes", mix.Name, r.Reads, r.Writes)
		}
	}
	if viol := l.CheckInvariants(); len(viol) != 0 {
		t.Fatalf("invariants after suite: %v", viol)
	}
}

// TestRunConcurrentOverNet runs one mixed workload through per-client netld
// connections against a shared server.
func TestRunConcurrentOverNet(t *testing.T) {
	open := newBenchNetOpen(t, 0)
	r, err := ldmicro.RunConcurrent("mixed", open, ldmicro.ConcurrentConfig{
		Clients:      4,
		Blocks:       64,
		OpsPerClient: 100,
		ReadFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Ops(), int64(4*100); got != want {
		t.Errorf("%d ops, want %d", got, want)
	}
}

// benchConcurrent runs one (mix, clients) point per benchmark iteration and
// reports aggregate throughput as ops/s.
func benchConcurrent(b *testing.B, open ldmicro.OpenFunc, mix ldmicro.Mix, clients int) {
	b.Helper()
	cfg := ldmicro.ConcurrentConfig{
		Clients:      clients,
		ReadFraction: mix.ReadFraction,
		Compress:     mix.Compress,
	}
	var opsPerSec float64
	for i := 0; i < b.N; i++ {
		r, err := ldmicro.RunConcurrent(mix.Name, open, cfg)
		if err != nil {
			b.Fatal(err)
		}
		opsPerSec = r.OpsPerSec()
	}
	b.ReportMetric(opsPerSec, "ops/s")
}

// BenchmarkConcurrentLocal measures multi-client throughput against an
// in-process LLD for each standard mix at 1, 4, and 16 clients.
func BenchmarkConcurrentLocal(b *testing.B) {
	for _, mix := range ldmicro.StandardMixes() {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", mix.Name, clients), func(b *testing.B) {
				l := newBenchLLD(b)
				benchConcurrent(b, ldmicro.SingleHandle(l), mix, clients)
			})
		}
	}
}

// BenchmarkConcurrentNet is the same suite through netld over loopback TCP
// with one connection per client.
func BenchmarkConcurrentNet(b *testing.B) {
	for _, mix := range ldmicro.StandardMixes() {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", mix.Name, clients), func(b *testing.B) {
				benchConcurrent(b, newBenchNetOpen(b, 0), mix, clients)
			})
		}
	}
}

// BenchmarkConcurrentNetSlowLink runs the suite over per-client connections
// that each carry a deterministic ~0.5ms-mean per-I/O delay. A single client
// is latency-bound (its synchronous RPCs serialize on its own link), so the
// throughput gain from added clients measures how well the server's
// concurrent read path overlaps independent requests.
func BenchmarkConcurrentNetSlowLink(b *testing.B) {
	for _, mix := range ldmicro.StandardMixes() {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", mix.Name, clients), func(b *testing.B) {
				open := newBenchNetOpen(b, time.Millisecond)
				cfg := ldmicro.ConcurrentConfig{
					Clients:      clients,
					OpsPerClient: 300,
					ReadFraction: mix.ReadFraction,
					Compress:     mix.Compress,
				}
				var opsPerSec float64
				for i := 0; i < b.N; i++ {
					r, err := ldmicro.RunConcurrent(mix.Name, open, cfg)
					if err != nil {
						b.Fatal(err)
					}
					opsPerSec = r.OpsPerSec()
				}
				b.ReportMetric(opsPerSec, "ops/s")
			})
		}
	}
}
