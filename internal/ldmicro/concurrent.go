package ldmicro

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ld"
)

// ConcurrentConfig sizes a multi-client throughput workload: Clients
// goroutines issue a randomized read/write mix against a shared working
// set of Blocks blocks prepared before timing starts.
type ConcurrentConfig struct {
	// Clients is the number of concurrent workers. Default 4.
	Clients int
	// Blocks is the shared working-set size. Default 256.
	Blocks int
	// BlockSize is the payload size per block. Default 4 KiB.
	BlockSize int
	// OpsPerClient is how many operations each worker issues. Default 2000.
	OpsPerClient int
	// ReadFraction is the probability an operation is a Read; the rest are
	// Writes. 0.95 models a read-heavy mix, 0.5 mixed, 0.1 write-heavy.
	ReadFraction float64
	// Compress puts the working set in a Compress-hinted list (paper §3.3),
	// so reads pay real decompression CPU — the work that a parallel read
	// path can overlap across clients.
	Compress bool
	// Seed makes the per-worker operation streams reproducible. Default 1.
	Seed int64
}

func (c ConcurrentConfig) withDefaults() ConcurrentConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Blocks <= 0 {
		c.Blocks = 256
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ConcurrentResult aggregates one multi-client run.
type ConcurrentResult struct {
	Name    string
	Clients int
	Reads   int64
	Writes  int64
	Bytes   int64 // user bytes moved in both directions
	Seconds float64
}

// Ops returns the total operation count.
func (r ConcurrentResult) Ops() int64 { return r.Reads + r.Writes }

// OpsPerSec returns the aggregate operation rate across all clients.
func (r ConcurrentResult) OpsPerSec() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Ops()) / r.Seconds
}

// String renders one result line.
func (r ConcurrentResult) String() string {
	return fmt.Sprintf("%-22s %2d clients %7d ops (%d r/%d w) in %8.3fs  %10.0f ops/s",
		r.Name, r.Clients, r.Ops(), r.Reads, r.Writes, r.Seconds, r.OpsPerSec())
}

// OpenFunc returns a fresh handle to the disk under test plus a close
// function. RunConcurrent calls it once for setup and once per client, so
// a netld caller can give every worker its own connection while an
// in-process caller returns the same *lld.LLD each time.
type OpenFunc func() (ld.Disk, func() error, error)

// SingleHandle adapts one shared, concurrency-safe handle to an OpenFunc.
func SingleHandle(d ld.Disk) OpenFunc {
	return func() (ld.Disk, func() error, error) {
		return d, func() error { return nil }, nil
	}
}

// concPayload fills buf with a self-identifying, compressible payload:
// a textual header naming the block and version, repeated to length. A
// reader that observes a torn or misdirected block sees a wrong header.
func concPayload(buf []byte, block, version int) {
	header := fmt.Sprintf("blk%06d v%08d lorem ipsum dolor sit amet | ", block, version)
	for off := 0; off < len(buf); off += len(header) {
		copy(buf[off:], header)
	}
}

// checkPayload verifies a read buffer carries block's header.
func checkPayload(buf []byte, block int) error {
	want := fmt.Sprintf("blk%06d ", block)
	if len(buf) < len(want) || string(buf[:len(want)]) != want {
		n := len(buf)
		if n > 24 {
			n = 24
		}
		return fmt.Errorf("block %d: payload header %q, want prefix %q", block, buf[:n], want)
	}
	return nil
}

// RunConcurrent prepares a Blocks-block working set, then runs Clients
// workers for OpsPerClient operations each against it and reports the
// aggregate wall-time throughput. Reads verify the block header, so a
// torn or misdirected read fails the run rather than inflating it.
func RunConcurrent(name string, open OpenFunc, cfg ConcurrentConfig) (ConcurrentResult, error) {
	cfg = cfg.withDefaults()

	setup, closeSetup, err := open()
	if err != nil {
		return ConcurrentResult{}, err
	}
	defer closeSetup()

	lid, err := setup.NewList(ld.NilList, ld.ListHints{Compress: cfg.Compress})
	if err != nil {
		return ConcurrentResult{}, err
	}
	bids := make([]ld.BlockID, cfg.Blocks)
	buf := make([]byte, cfg.BlockSize)
	pred := ld.NilBlock
	for i := range bids {
		b, err := setup.NewBlock(lid, pred)
		if err != nil {
			return ConcurrentResult{}, fmt.Errorf("setup block %d: %w", i, err)
		}
		concPayload(buf, i, 0)
		if err := setup.Write(b, buf); err != nil {
			return ConcurrentResult{}, fmt.Errorf("setup write %d: %w", i, err)
		}
		bids[i], pred = b, b
	}
	if err := setup.Flush(ld.FailPower); err != nil {
		return ConcurrentResult{}, err
	}

	var (
		wg            sync.WaitGroup
		reads, writes int64
		bytesMoved    int64
		mu            sync.Mutex
		firstErr      error
		handles       = make([]ld.Disk, cfg.Clients)
		closers       = make([]func() error, cfg.Clients)
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < cfg.Clients; w++ {
		d, cl, err := open()
		if err != nil {
			for j := 0; j < w; j++ {
				closers[j]()
			}
			return ConcurrentResult{}, err
		}
		handles[w], closers[w] = d, cl
	}

	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := handles[w]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*9973))
			rbuf := make([]byte, cfg.BlockSize)
			wbuf := make([]byte, cfg.BlockSize)
			for op := 0; op < cfg.OpsPerClient; op++ {
				i := rng.Intn(cfg.Blocks)
				if rng.Float64() < cfg.ReadFraction {
					n, err := d.Read(bids[i], rbuf)
					if err != nil {
						fail(fmt.Errorf("client %d read block %d: %w", w, i, err))
						return
					}
					if err := checkPayload(rbuf[:n], i); err != nil {
						fail(fmt.Errorf("client %d: %w", w, err))
						return
					}
					atomic.AddInt64(&reads, 1)
					atomic.AddInt64(&bytesMoved, int64(n))
				} else {
					concPayload(wbuf, i, w*cfg.OpsPerClient+op+1)
					if err := d.Write(bids[i], wbuf); err != nil {
						fail(fmt.Errorf("client %d write block %d: %w", w, i, err))
						return
					}
					atomic.AddInt64(&writes, 1)
					atomic.AddInt64(&bytesMoved, int64(cfg.BlockSize))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	for _, cl := range closers {
		if err := cl(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return ConcurrentResult{}, firstErr
	}
	if err := setup.DeleteList(lid, ld.NilList); err != nil {
		return ConcurrentResult{}, err
	}
	if err := setup.Flush(ld.FailPower); err != nil {
		return ConcurrentResult{}, err
	}
	return ConcurrentResult{
		Name:    name,
		Clients: cfg.Clients,
		Reads:   reads,
		Writes:  writes,
		Bytes:   bytesMoved,
		Seconds: elapsed,
	}, nil
}

// Mix is a named read/write ratio for the concurrent suite.
type Mix struct {
	Name         string
	ReadFraction float64
	Compress     bool
}

// StandardMixes returns the three mixes the concurrency experiments use.
// The read-heavy mix runs against a Compress-hinted list so reads carry
// real per-call decompression CPU — the component a shared-lock read path
// serializes and a reader/writer path overlaps.
func StandardMixes() []Mix {
	return []Mix{
		{Name: "read-heavy", ReadFraction: 0.95, Compress: true},
		{Name: "mixed", ReadFraction: 0.50},
		{Name: "write-heavy", ReadFraction: 0.10},
	}
}

// RunConcurrentSuite runs every standard mix at each client count against
// open, returning one result per (mix, clients) pair.
func RunConcurrentSuite(open OpenFunc, clients []int, base ConcurrentConfig) ([]ConcurrentResult, error) {
	var results []ConcurrentResult
	for _, mix := range StandardMixes() {
		for _, n := range clients {
			cfg := base
			cfg.Clients = n
			cfg.ReadFraction = mix.ReadFraction
			cfg.Compress = mix.Compress
			r, err := RunConcurrent(mix.Name, open, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%d clients: %w", mix.Name, n, err)
			}
			results = append(results, r)
		}
	}
	return results, nil
}
