package ldmicro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/ldmicro"
	"repro/internal/lld"
)

// newLanedFunc builds fresh in-process LLDs at the requested lane count
// over a SlowBackend, so segment seal writes cost real wall time and the
// async pipeline's overlap is measurable.
func newLanedFunc(tb testing.TB, capacity int64, lat time.Duration) ldmicro.NewLanedFunc {
	tb.Helper()
	return func(lanes int) (ld.Disk, func() error, error) {
		b := &ldmicro.SlowBackend{
			Backend:      disk.New(disk.DefaultConfig(capacity)),
			WriteLatency: lat,
		}
		o := lld.DefaultOptions()
		o.CompressBandwidth = 0 // wall-time measurements; no virtual CPU charge
		o.MapShards = 4
		o.SegmentLanes = lanes
		if err := lld.Format(b, o); err != nil {
			return nil, nil, err
		}
		l, err := lld.Open(b, o)
		if err != nil {
			return nil, nil, err
		}
		return l, func() error { return l.Shutdown(true) }, nil
	}
}

// TestLaneSweepSmoke runs a tiny sweep end to end: every cell must
// complete with verified payloads, and the one-lane cells must exist for
// the scaling comparison.
func TestLaneSweepSmoke(t *testing.T) {
	results, err := ldmicro.RunLaneSweep(newLanedFunc(t, 16<<20, 0), ldmicro.LaneSweepConfig{
		Clients: []int{1, 4},
		Lanes:   []int{1, 4},
		Base: ldmicro.ConcurrentConfig{
			Blocks:       64,
			OpsPerClient: 100,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, r := range results {
		if r.Writes == 0 || r.Reads != 0 {
			t.Errorf("lanes=%d clients=%d: %d reads/%d writes, want all-write", r.Lanes, r.Clients, r.Reads, r.Writes)
		}
	}
}

// TestSlowBackendLatency pins the wrapper's contract: WriteAt sleeps,
// ReadAt and WriteAtNVRAM do not.
func TestSlowBackendLatency(t *testing.T) {
	b := &ldmicro.SlowBackend{
		Backend:      disk.New(disk.DefaultConfig(1 << 20)),
		WriteLatency: 20 * time.Millisecond,
	}
	buf := make([]byte, b.SectorSize())
	start := time.Now()
	if err := b.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("WriteAt returned in %v, want >= 20ms", d)
	}
	start = time.Now()
	if err := b.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteAtNVRAM(buf, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= 20*time.Millisecond {
		t.Errorf("ReadAt+WriteAtNVRAM took %v, want fast passthrough", d)
	}
}

// BenchmarkWriteScalingLanes reports aggregate all-write throughput at 16
// clients for 1, 2, and 4 lanes over a 200µs-per-write backend; ldbench
// -lanebench prints the full client × lane matrix.
func BenchmarkWriteScalingLanes(b *testing.B) {
	for _, lanes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			newDisk := newLanedFunc(b, 64<<20, 200*time.Microsecond)
			for i := 0; i < b.N; i++ {
				results, err := ldmicro.RunLaneSweep(newDisk, ldmicro.LaneSweepConfig{
					Clients: []int{16},
					Lanes:   []int{lanes},
					Base:    ldmicro.ConcurrentConfig{OpsPerClient: 500},
				})
				if err != nil {
					b.Fatal(err)
				}
				r := results[0]
				b.ReportMetric(r.OpsPerSec(), "ops/s")
			}
		})
	}
}
