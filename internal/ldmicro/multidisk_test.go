package ldmicro

import "testing"

// TestRunMultiDisk checks the sweep's shape and its headline physics:
// striped sequential reads get faster with more legs, and a mirror's
// write fan-out does not slow the virtual clock down by the replica
// count (the arms move in parallel).
func TestRunMultiDisk(t *testing.T) {
	cfg := MultiDiskConfig{
		StripeCounts:  []int{1, 4},
		MirrorCounts:  []int{1, 2},
		IOBytes:       2 << 20,
		ChildCapacity: 4 << 20,
	}
	results, err := RunMultiDisk(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]MultiDiskResult)
	for _, r := range results {
		if r.Bytes == 0 || r.Seconds <= 0 {
			t.Fatalf("empty phase: %+v", r)
		}
		byKey[r.Mode+string(rune('0'+r.Backends))+r.Op] = r
	}
	// 2 phases per stripe count, 2 per mirror count, +1 degraded read for n=2.
	if want := 2*2 + 2*2 + 1; len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}

	s1 := byKey["stripe1seq read"]
	s4 := byKey["stripe4seq read"]
	if s4.MBPerSec() < 1.5*s1.MBPerSec() {
		t.Fatalf("4-leg stripe reads %.2f MB/s vs %.2f single: no scaling", s4.MBPerSec(), s1.MBPerSec())
	}
	m1 := byKey["mirror1seq write"]
	m2 := byKey["mirror2seq write"]
	if m2.Seconds > 1.5*m1.Seconds {
		t.Fatalf("2-way mirror write took %.3fs vs %.3fs single: fan-out not parallel", m2.Seconds, m1.Seconds)
	}
	if _, ok := byKey["mirror2degraded read"]; !ok {
		t.Fatal("missing degraded-read phase for the 2-way mirror")
	}
}
