package ldmicro

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ld"
)

// BatchReadConfig sizes a list-scan workload: every client repeatedly
// reads the whole working set, either one Read round trip per block or
// one batched ld.ReadBlocks call per sweep. On a latency-bearing link the
// difference is the round-trip count — 1+N versus 2 per sweep — which is
// exactly what the batched wire read amortizes.
type BatchReadConfig struct {
	// Clients is the number of concurrent scanners. Default 1.
	Clients int
	// Blocks is the working-set size. Default 64.
	Blocks int
	// BlockSize is the payload size per block. Default 4 KiB.
	BlockSize int
	// Rounds is how many full sweeps each client performs. Default 4.
	Rounds int
}

func (c BatchReadConfig) withDefaults() BatchReadConfig {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Blocks <= 0 {
		c.Blocks = 64
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	return c
}

// BatchReadResult aggregates one scan run.
type BatchReadResult struct {
	Name    string
	Batched bool
	Clients int
	Blocks  int64 // total blocks read across all clients and rounds
	Bytes   int64
	Seconds float64
}

// BlocksPerSec returns the aggregate block read rate.
func (r BatchReadResult) BlocksPerSec() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Blocks) / r.Seconds
}

// String renders one result line.
func (r BatchReadResult) String() string {
	mode := "per-block"
	if r.Batched {
		mode = "batched"
	}
	return fmt.Sprintf("%-22s %-9s %2d clients %7d blocks in %8.3fs  %10.0f blocks/s",
		r.Name, mode, r.Clients, r.Blocks, r.Seconds, r.BlocksPerSec())
}

// RunBatchRead prepares a working set, then scans it Rounds times from
// each of Clients workers — through ld.ReadBlocks when batched, through
// per-block Read calls otherwise. Every payload is verified, so a batch
// that returns wrong bytes or spurious per-entry errors fails the run.
func RunBatchRead(name string, open OpenFunc, cfg BatchReadConfig, batched bool) (BatchReadResult, error) {
	cfg = cfg.withDefaults()

	setup, closeSetup, err := open()
	if err != nil {
		return BatchReadResult{}, err
	}
	defer closeSetup()

	lid, err := setup.NewList(ld.NilList, ld.ListHints{})
	if err != nil {
		return BatchReadResult{}, err
	}
	bids := make([]ld.BlockID, cfg.Blocks)
	wbuf := make([]byte, cfg.BlockSize)
	pred := ld.NilBlock
	for i := range bids {
		b, err := setup.NewBlock(lid, pred)
		if err != nil {
			return BatchReadResult{}, fmt.Errorf("setup block %d: %w", i, err)
		}
		concPayload(wbuf, i, 0)
		if err := setup.Write(b, wbuf); err != nil {
			return BatchReadResult{}, fmt.Errorf("setup write %d: %w", i, err)
		}
		bids[i], pred = b, b
	}
	if err := setup.Flush(ld.FailPower); err != nil {
		return BatchReadResult{}, err
	}

	handles := make([]ld.Disk, cfg.Clients)
	closers := make([]func() error, cfg.Clients)
	for w := 0; w < cfg.Clients; w++ {
		d, cl, err := open()
		if err != nil {
			for j := 0; j < w; j++ {
				closers[j]()
			}
			return BatchReadResult{}, err
		}
		handles[w], closers[w] = d, cl
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := handles[w]
			bufs := make([][]byte, cfg.Blocks)
			for i := range bufs {
				bufs[i] = make([]byte, cfg.BlockSize)
			}
			for round := 0; round < cfg.Rounds; round++ {
				if batched {
					results, err := ld.ReadBlocks(d, bids, bufs)
					if err != nil {
						fail(fmt.Errorf("client %d round %d: %w", w, round, err))
						return
					}
					for i, r := range results {
						if r.Err != nil {
							fail(fmt.Errorf("client %d round %d block %d: %w", w, round, i, r.Err))
							return
						}
						if err := checkPayload(bufs[i][:r.N], i); err != nil {
							fail(fmt.Errorf("client %d round %d: %w", w, round, err))
							return
						}
					}
				} else {
					for i, b := range bids {
						n, err := d.Read(b, bufs[i])
						if err != nil {
							fail(fmt.Errorf("client %d round %d block %d: %w", w, round, i, err))
							return
						}
						if err := checkPayload(bufs[i][:n], i); err != nil {
							fail(fmt.Errorf("client %d round %d: %w", w, round, err))
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	for _, cl := range closers {
		if err := cl(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return BatchReadResult{}, firstErr
	}
	if err := setup.DeleteList(lid, ld.NilList); err != nil {
		return BatchReadResult{}, err
	}
	if err := setup.Flush(ld.FailPower); err != nil {
		return BatchReadResult{}, err
	}
	total := int64(cfg.Clients) * int64(cfg.Rounds) * int64(cfg.Blocks)
	return BatchReadResult{
		Name:    name,
		Batched: batched,
		Clients: cfg.Clients,
		Blocks:  total,
		Bytes:   total * int64(cfg.BlockSize),
		Seconds: elapsed,
	}, nil
}

// RunBatchReadComparison runs the same scan per-block and then batched and
// returns both results; the ratio of their rates is the round-trip
// amortization win.
func RunBatchReadComparison(name string, open OpenFunc, cfg BatchReadConfig) (perBlock, batched BatchReadResult, err error) {
	perBlock, err = RunBatchRead(name, open, cfg, false)
	if err != nil {
		return perBlock, batched, err
	}
	batched, err = RunBatchRead(name, open, cfg, true)
	return perBlock, batched, err
}
