package ldmicro

import (
	"fmt"

	"repro/internal/ld"
)

// This file measures write scaling across block-map lock stripes
// (lld.Options.MapShards). The workload is all-writes against a
// Compress-hinted working set: compression and checksumming are the
// CPU-heavy part of a write that the striped write path runs outside the
// instance lock, so aggregate throughput should rise with the client count
// once enough stripes exist — and stay flat at one stripe, which
// serializes every write exactly like the unsharded instance.

// NewShardedFunc returns a fresh disk-under-test configured with the given
// stripe count, plus a close function. Each sweep cell gets its own
// instance so cells do not share cleaner state or segment history.
type NewShardedFunc func(shards int) (ld.Disk, func() error, error)

// ShardSweepConfig sizes the write-scaling sweep.
type ShardSweepConfig struct {
	// Clients lists the worker counts to sweep. Default {1, 4, 16}.
	Clients []int
	// Shards lists the stripe counts to sweep. Default {1, 4, 8}.
	Shards []int
	// Base sizes each cell's workload (Blocks, BlockSize, OpsPerClient,
	// Seed); its Clients, ReadFraction, and Compress are overridden.
	Base ConcurrentConfig
}

func (c ShardSweepConfig) withDefaults() ShardSweepConfig {
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 4, 16}
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 4, 8}
	}
	return c
}

// ShardSweepResult is one (stripe count, client count) cell.
type ShardSweepResult struct {
	Shards int
	ConcurrentResult
}

// RunShardSweep measures all-write throughput for every stripe count ×
// client count cell. Write verification comes free from RunConcurrent's
// self-identifying payloads.
func RunShardSweep(newDisk NewShardedFunc, cfg ShardSweepConfig) ([]ShardSweepResult, error) {
	cfg = cfg.withDefaults()
	var results []ShardSweepResult
	for _, s := range cfg.Shards {
		for _, n := range cfg.Clients {
			d, closeDisk, err := newDisk(s)
			if err != nil {
				return nil, fmt.Errorf("shards=%d: %w", s, err)
			}
			base := cfg.Base
			base.Clients = n
			base.ReadFraction = 0
			base.Compress = true
			r, runErr := RunConcurrent(fmt.Sprintf("write-all/%d-shard", s), SingleHandle(d), base)
			if err := closeDisk(); err != nil && runErr == nil {
				runErr = err
			}
			if runErr != nil {
				return nil, fmt.Errorf("shards=%d clients=%d: %w", s, n, runErr)
			}
			results = append(results, ShardSweepResult{Shards: s, ConcurrentResult: r})
		}
	}
	return results, nil
}
