// Package ldmicro holds LD-level microbenchmarks that run against any
// ld.Disk — in-process or remote over netld. They mirror the paper's
// small-file and large-file workloads (§4) at the Logical Disk interface
// rather than through a file system, which makes them the right probe for
// measuring what a transport adds: each file is one list holding one
// block, so create/read/delete cost a handful of LD commands.
//
// Unlike the harness experiments, which report the simulated disk's
// virtual clock, these report wall time: the interesting quantity for
// remote-vs-local comparison is protocol and scheduling overhead, which
// only wall time sees.
package ldmicro

import (
	"fmt"
	"time"

	"repro/internal/ld"
)

// Config sizes the microbenchmark workloads.
type Config struct {
	// SmallFiles is the number of small files (lists) created, read, and
	// deleted. Default 500.
	SmallFiles int
	// SmallSize is the data size per small file. Default 1 KiB.
	SmallSize int
	// LargeBytes is the total size of the large-file write. Default 4 MiB.
	LargeBytes int
	// LargeBlock is the block size used for the large file. Default 4 KiB.
	LargeBlock int
}

func (c Config) withDefaults() Config {
	if c.SmallFiles <= 0 {
		c.SmallFiles = 500
	}
	if c.SmallSize <= 0 {
		c.SmallSize = 1024
	}
	if c.LargeBytes <= 0 {
		c.LargeBytes = 4 << 20
	}
	if c.LargeBlock <= 0 {
		c.LargeBlock = 4096
	}
	return c
}

// Result is one benchmark phase's outcome.
type Result struct {
	Op      string  // phase name
	Ops     int     // LD-visible operations performed
	Bytes   int64   // user bytes moved (0 for metadata-only phases)
	Seconds float64 // wall time
}

// OpsPerSec returns the phase's operation rate.
func (r Result) OpsPerSec() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Seconds
}

// KBPerSec returns the phase's data rate in KB/s (0 if no data moved).
func (r Result) KBPerSec() float64 {
	if r.Seconds <= 0 || r.Bytes == 0 {
		return 0
	}
	return float64(r.Bytes) / 1024 / r.Seconds
}

// String renders one result line.
func (r Result) String() string {
	s := fmt.Sprintf("%-22s %7d ops in %8.3fs  %10.0f ops/s", r.Op, r.Ops, r.Seconds, r.OpsPerSec())
	if r.Bytes > 0 {
		s += fmt.Sprintf("  %10.0f KB/s", r.KBPerSec())
	}
	return s
}

// Run executes the microbenchmarks against d: small-file create, read,
// and delete phases, then a large-file sequential write. The disk is
// flushed after each mutating phase so the numbers include durability.
func Run(d ld.Disk, cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	var results []Result

	data := make([]byte, cfg.SmallSize)
	for i := range data {
		data[i] = byte(i)
	}

	// Small-file create: one list + one block + one write per file.
	lids := make([]ld.ListID, cfg.SmallFiles)
	bids := make([]ld.BlockID, cfg.SmallFiles)
	start := time.Now()
	for i := 0; i < cfg.SmallFiles; i++ {
		lid, err := d.NewList(ld.NilList, ld.ListHints{Cluster: true})
		if err != nil {
			return nil, fmt.Errorf("small create %d: %w", i, err)
		}
		b, err := d.NewBlock(lid, ld.NilBlock)
		if err != nil {
			return nil, fmt.Errorf("small create %d: %w", i, err)
		}
		if err := d.Write(b, data); err != nil {
			return nil, fmt.Errorf("small create %d: %w", i, err)
		}
		lids[i], bids[i] = lid, b
	}
	if err := d.Flush(ld.FailPower); err != nil {
		return nil, err
	}
	results = append(results, Result{
		Op:      "small-file create",
		Ops:     cfg.SmallFiles,
		Bytes:   int64(cfg.SmallFiles) * int64(cfg.SmallSize),
		Seconds: time.Since(start).Seconds(),
	})

	// Small-file read.
	buf := make([]byte, cfg.SmallSize)
	start = time.Now()
	for i, b := range bids {
		n, err := d.Read(b, buf)
		if err != nil {
			return nil, fmt.Errorf("small read %d: %w", i, err)
		}
		if n != cfg.SmallSize {
			return nil, fmt.Errorf("small read %d: got %d bytes, want %d", i, n, cfg.SmallSize)
		}
	}
	results = append(results, Result{
		Op:      "small-file read",
		Ops:     cfg.SmallFiles,
		Bytes:   int64(cfg.SmallFiles) * int64(cfg.SmallSize),
		Seconds: time.Since(start).Seconds(),
	})

	// Small-file delete: DeleteList frees the list and its block.
	start = time.Now()
	for i, lid := range lids {
		if err := d.DeleteList(lid, ld.NilList); err != nil {
			return nil, fmt.Errorf("small delete %d: %w", i, err)
		}
	}
	if err := d.Flush(ld.FailPower); err != nil {
		return nil, err
	}
	results = append(results, Result{
		Op:      "small-file delete",
		Ops:     cfg.SmallFiles,
		Seconds: time.Since(start).Seconds(),
	})

	// Large-file sequential write: one list, block-at-a-time appends.
	nBlocks := cfg.LargeBytes / cfg.LargeBlock
	if nBlocks < 1 {
		nBlocks = 1
	}
	block := make([]byte, cfg.LargeBlock)
	for i := range block {
		block[i] = byte(i * 7)
	}
	lid, err := d.NewList(ld.NilList, ld.ListHints{Cluster: true})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	pred := ld.NilBlock
	for i := 0; i < nBlocks; i++ {
		b, err := d.NewBlock(lid, pred)
		if err != nil {
			return nil, fmt.Errorf("large write block %d: %w", i, err)
		}
		if err := d.Write(b, block); err != nil {
			return nil, fmt.Errorf("large write block %d: %w", i, err)
		}
		pred = b
	}
	if err := d.FlushList(lid); err != nil {
		return nil, err
	}
	results = append(results, Result{
		Op:      "large-file write",
		Ops:     nBlocks,
		Bytes:   int64(nBlocks) * int64(cfg.LargeBlock),
		Seconds: time.Since(start).Seconds(),
	})
	if err := d.DeleteList(lid, ld.NilList); err != nil {
		return nil, err
	}
	return results, nil
}
