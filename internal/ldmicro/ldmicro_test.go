package ldmicro

import (
	"net"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
	"repro/internal/netld/client"
	"repro/internal/netld/server"
)

func newLLD(t *testing.T) ld.Disk {
	t.Helper()
	d := disk.New(disk.DefaultConfig(16 << 20))
	o := lld.DefaultOptions()
	o.SegmentSize = 64 * 1024
	o.SummarySize = 8 * 1024
	if err := lld.Format(d, o); err != nil {
		t.Fatal(err)
	}
	l, err := lld.Open(d, o)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func quick() Config {
	return Config{SmallFiles: 20, SmallSize: 512, LargeBytes: 64 * 1024, LargeBlock: 4096}
}

func checkResults(t *testing.T, results []Result) {
	t.Helper()
	want := []string{"small-file create", "small-file read", "small-file delete", "large-file write"}
	if len(results) != len(want) {
		t.Fatalf("got %d results, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Op != want[i] {
			t.Fatalf("result %d is %q, want %q", i, r.Op, want[i])
		}
		if r.Ops <= 0 {
			t.Fatalf("%s: no ops", r.Op)
		}
		if !strings.Contains(r.String(), r.Op) {
			t.Fatalf("%s: String() lost the op name", r.Op)
		}
	}
}

func TestRunLocal(t *testing.T) {
	results, err := Run(newLLD(t), quick())
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, results)
}

func TestRunRemote(t *testing.T) {
	srv := server.New(server.Config{Disk: newLLD(t)})
	t.Cleanup(func() { srv.Close() })
	dial := func() (net.Conn, error) {
		cl, sv := net.Pipe()
		go srv.ServeConn(sv)
		return cl, nil
	}
	c, err := client.New(dial, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	results, err := Run(c, quick())
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, results)
}
