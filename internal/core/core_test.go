package core

import (
	"testing"

	"repro/internal/ld"
	"repro/internal/lld"
)

func TestNewDefaults(t *testing.T) {
	s, err := New(Config{DiskBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s.LD() == nil || s.Disk == nil || s.LLD == nil {
		t.Fatal("incomplete stack")
	}
	if s.LLD.SegmentSize() != 512*1024 {
		t.Fatalf("segment size %d, want the paper's 512 KB", s.LLD.SegmentSize())
	}
	// The stack is usable end to end.
	lid, err := s.LD().NewList(ld.NilList, ld.ListHints{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.LD().NewBlock(lid, ld.NilBlock)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LD().Write(b, []byte("via the facade")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := s.LD().Read(b, buf)
	if err != nil || string(buf[:n]) != "via the facade" {
		t.Fatalf("read back %q, %v", buf[:n], err)
	}
}

func TestNewCustomOptions(t *testing.T) {
	opts := lld.DefaultOptions()
	opts.SegmentSize = 128 * 1024
	s, err := New(Config{DiskBytes: 16 << 20, LLD: &opts})
	if err != nil {
		t.Fatal(err)
	}
	if s.LLD.SegmentSize() != 128*1024 {
		t.Fatalf("segment size %d", s.LLD.SegmentSize())
	}
}

func TestReopenAfterCrash(t *testing.T) {
	s, err := New(Config{DiskBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	lid, _ := s.LD().NewList(ld.NilList, ld.ListHints{})
	b, _ := s.LD().NewBlock(lid, ld.NilBlock)
	if err := s.LD().Write(b, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := s.LD().Flush(ld.FailPower); err != nil {
		t.Fatal(err)
	}
	if err := s.LD().Shutdown(false); err != nil {
		t.Fatal(err)
	}
	s2, err := Reopen(s.Disk, lld.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := s2.LD().Read(b, buf)
	if err != nil || string(buf[:n]) != "durable" {
		t.Fatalf("reopen read %q, %v", buf[:n], err)
	}
}

func TestNewTooSmall(t *testing.T) {
	if _, err := New(Config{DiskBytes: 1 << 20}); err == nil {
		t.Fatal("1-MB disk with 512-KB segments should not format")
	}
}
