package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ld"
)

// Example shows the minimal Logical Disk workflow: create the stack, make
// a list, allocate and write a block, and read it back.
func Example() {
	stack, err := core.New(core.Config{DiskBytes: 16 << 20})
	if err != nil {
		log.Fatal(err)
	}
	disk := stack.LD()

	list, _ := disk.NewList(ld.NilList, ld.ListHints{Cluster: true})
	block, _ := disk.NewBlock(list, ld.NilBlock)
	_ = disk.Write(block, []byte("hello"))
	_ = disk.Flush(ld.FailPower)

	buf := make([]byte, 16)
	n, _ := disk.Read(block, buf)
	fmt.Println(string(buf[:n]))
	// Output: hello
}
