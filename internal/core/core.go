// Package core wires the pieces of the Logical Disk reproduction together:
// it creates a simulated disk, formats it with the log-structured LD
// implementation, and hands back the ld.Disk interface the paper defines.
// File systems and applications program against ld.Disk; the choice of
// implementation (and of physical disk) stays behind this facade, which is
// the modularity argument of the paper's Figure 1.
package core

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
)

// Version identifies this reproduction of the SOSP '93 Logical Disk.
const Version = "1.0.0"

// Config bundles the knobs for creating a complete LD stack.
type Config struct {
	// DiskBytes is the simulated disk capacity. Zero defaults to the
	// paper's 400-MB measurement partition.
	DiskBytes int64
	// Disk optionally overrides the mechanical model. If nil, a disk
	// modeled on the paper's HP C3010 is created.
	Disk *disk.Config
	// LLD configures the log-structured implementation. The zero value
	// means lld.DefaultOptions (512-KB segments, 4-KB blocks, 75% flush
	// threshold).
	LLD *lld.Options
}

// Stack is a running Logical Disk on a simulated physical disk.
type Stack struct {
	Disk *disk.Disk
	LLD  *lld.LLD
}

// LD returns the paper's Logical Disk interface for this stack.
func (s *Stack) LD() ld.Disk { return s.LLD }

// New creates a fresh disk, formats it, and opens a Logical Disk on it.
func New(cfg Config) (*Stack, error) {
	if cfg.DiskBytes == 0 {
		cfg.DiskBytes = 400 << 20
	}
	dcfg := disk.DefaultConfig(cfg.DiskBytes)
	if cfg.Disk != nil {
		dcfg = *cfg.Disk
	}
	d := disk.New(dcfg)
	opts := lld.DefaultOptions()
	if cfg.LLD != nil {
		opts = *cfg.LLD
	}
	if err := lld.Format(d, opts); err != nil {
		return nil, fmt.Errorf("core: format: %w", err)
	}
	l, err := lld.Open(d, opts)
	if err != nil {
		return nil, fmt.Errorf("core: open: %w", err)
	}
	return &Stack{Disk: d, LLD: l}, nil
}

// Reopen re-attaches to an existing disk, running checkpoint restart or
// one-sweep crash recovery as appropriate.
func Reopen(d *disk.Disk, opts lld.Options) (*Stack, error) {
	l, err := lld.Open(d, opts)
	if err != nil {
		return nil, fmt.Errorf("core: reopen: %w", err)
	}
	return &Stack{Disk: d, LLD: l}, nil
}
