// The contract suite run against the network: a netld client talking to a
// netld server backed by LLD must be indistinguishable from an in-process
// ld.Disk. The lockstep engine and its assertions are reused unchanged —
// the wire layer earns its keep by adding zero new semantics.
package ldtest

import (
	"net"
	"testing"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
	"repro/internal/netld/client"
	"repro/internal/netld/server"
)

// newNetLLD builds an LLD-backed netld server and returns a connected
// remote client. transport picks net.Pipe or loopback TCP.
func newNetLLD(t *testing.T, transport string) ld.Disk {
	t.Helper()
	d := disk.New(disk.DefaultConfig(16 << 20))
	o := lld.DefaultOptions()
	o.SegmentSize = 64 * 1024
	o.SummarySize = 8 * 1024
	if err := lld.Format(d, o); err != nil {
		t.Fatal(err)
	}
	l, err := lld.Open(d, o)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Disk:   l,
		Reopen: func() (ld.Disk, error) { return lld.Open(d, o) },
	})
	t.Cleanup(func() { srv.Close() })

	var dial func() (net.Conn, error)
	switch transport {
	case "pipe":
		dial = func() (net.Conn, error) {
			cl, sv := net.Pipe()
			go srv.ServeConn(sv)
			return cl, nil
		}
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback unavailable: %v", err)
		}
		go srv.Serve(ln)
		addr := ln.Addr().String()
		dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	c, err := client.New(dial, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestNetLDLockstepOverPipe runs the full contract suite with the remote
// client (LLD behind a netld server over net.Pipe) against local ULD.
func TestNetLDLockstepOverPipe(t *testing.T) {
	runLockstep(t, func(t *testing.T) ld.Disk { return newNetLLD(t, "pipe") }, newULD, "netld(lld)", "uld")
}

// TestNetLDLockstepOverTCP is the same suite over real loopback TCP.
func TestNetLDLockstepOverTCP(t *testing.T) {
	runLockstep(t, func(t *testing.T) ld.Disk { return newNetLLD(t, "tcp") }, newULD, "netld(lld)", "uld")
}
