// Batched-read equivalence: ld.ReadBlocks must be observationally
// identical to the same sequence of Read calls — byte-for-byte data,
// per-entry counts, and per-entry error classes, including missing
// (ErrBadBlock) and corrupt (ErrCorrupt) entries — for every batching
// implementation: the LLD shared-lock fast path, the netld OpReadMulti
// wire path, and the generic per-block fallback.
package ldtest

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"testing"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
	"repro/internal/netld/client"
	"repro/internal/netld/server"
)

// hideMulti hides a disk's MultiReadDisk implementation, forcing
// ld.ReadBlocks onto the generic sequential fallback.
type hideMulti struct{ ld.Disk }

// batchDisk is one disk under equivalence test plus the backing media to
// corrupt.
type batchDisk struct {
	name string
	d    ld.Disk
	dsk  *disk.Disk
}

func newBatchDisks(t *testing.T) []batchDisk {
	t.Helper()
	build := func() (ld.Disk, *disk.Disk, lld.Options) {
		d := disk.New(disk.DefaultConfig(8 << 20))
		o := lld.DefaultOptions()
		o.SegmentSize = 64 * 1024
		o.SummarySize = 8 * 1024
		if err := lld.Format(d, o); err != nil {
			t.Fatal(err)
		}
		l, err := lld.Open(d, o)
		if err != nil {
			t.Fatal(err)
		}
		return l, d, o
	}

	l1, d1, _ := build()
	l2, d2, _ := build()

	l3, d3, o3 := build()
	srv := server.New(server.Config{
		Disk:   l3,
		Reopen: func() (ld.Disk, error) { return lld.Open(d3, o3) },
	})
	t.Cleanup(func() { srv.Close() })
	c, err := client.New(func() (net.Conn, error) {
		cl, sv := net.Pipe()
		go srv.ServeConn(sv)
		return cl, nil
	}, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	return []batchDisk{
		{name: "lld", d: l1, dsk: d1},
		{name: "fallback(lld)", d: hideMulti{l2}, dsk: d2},
		{name: "netld(lld)", d: c, dsk: d3},
	}
}

// sentinelClass maps an error to the ld sentinel it unwraps to, so error
// equivalence compares classes rather than message strings (the wire
// drops per-entry messages by design).
func sentinelClass(err error) string {
	switch {
	case err == nil:
		return "nil"
	case errors.Is(err, ld.ErrBadBlock):
		return "ErrBadBlock"
	case errors.Is(err, ld.ErrCorrupt):
		return "ErrCorrupt"
	case errors.Is(err, ld.ErrBadList):
		return "ErrBadList"
	case errors.Is(err, ld.ErrShutdown):
		return "ErrShutdown"
	default:
		return "other:" + err.Error()
	}
}

// TestReadBlocksLockstepWithSequentialReads builds the same damaged
// workload on every batching implementation and checks each batch entry
// against the individual Read it replaces.
func TestReadBlocksLockstepWithSequentialReads(t *testing.T) {
	for _, bd := range newBatchDisks(t) {
		t.Run(bd.name, func(t *testing.T) {
			d := bd.d
			lid, err := d.NewList(ld.NilList, ld.ListHints{})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(23))
			const nBlocks = 1000
			ids := make([]ld.BlockID, 0, nBlocks)
			prev := ld.NilBlock
			for i := 0; i < nBlocks; i++ {
				b, err := d.NewBlock(lid, prev)
				if err != nil {
					t.Fatal(err)
				}
				// Varied sizes, including an empty block every 97th.
				size := 4096
				switch {
				case i%97 == 0:
					size = 0
				case i%13 == 0:
					size = 1 + rng.Intn(512)
				}
				data := make([]byte, size)
				rng.Read(data)
				if err := d.Write(b, data); err != nil {
					t.Fatal(err)
				}
				ids, prev = append(ids, b), b
			}
			// Delete one block mid-list: its id must read as ErrBadBlock.
			deleted := ids[41]
			if err := d.DeleteBlock(deleted, lid, ids[40]); err != nil {
				t.Fatal(err)
			}
			if err := d.Flush(ld.FailPower); err != nil {
				t.Fatal(err)
			}
			// Rot a window of the backing media so some entries corrupt.
			bd.dsk.CorruptRange(bd.dsk.Capacity()/2, 256<<10, 0x5a)

			// The batch: every block (one now deleted) plus never-valid ids.
			bs := append([]ld.BlockID{}, ids...)
			bs = append(bs, ld.NilBlock, 999999, deleted)

			bufsBatch := make([][]byte, len(bs))
			bufsSeq := make([][]byte, len(bs))
			for i := range bs {
				bufsBatch[i] = make([]byte, 4096)
				bufsSeq[i] = make([]byte, 4096)
			}

			results, err := ld.ReadBlocks(d, bs, bufsBatch)
			if err != nil {
				t.Fatalf("ReadBlocks: %v", err)
			}
			if len(results) != len(bs) {
				t.Fatalf("%d results for %d blocks", len(results), len(bs))
			}

			classes := map[string]int{}
			for i, b := range bs {
				n, seqErr := d.Read(b, bufsSeq[i])
				got, want := results[i], ld.BlockRead{N: n, Err: seqErr}
				if gc, wc := sentinelClass(got.Err), sentinelClass(want.Err); gc != wc {
					t.Fatalf("entry %d (block %d): batch error %s, sequential error %s", i, b, gc, wc)
				}
				if got.N != want.N {
					t.Fatalf("entry %d (block %d): batch n=%d, sequential n=%d", i, b, got.N, want.N)
				}
				if !bytes.Equal(bufsBatch[i][:got.N], bufsSeq[i][:want.N]) {
					t.Fatalf("entry %d (block %d): batch bytes differ from sequential read", i, b)
				}
				classes[sentinelClass(got.Err)]++
			}
			// The workload must actually exercise the interesting classes.
			if classes["nil"] == 0 || classes["ErrBadBlock"] < 3 || classes["ErrCorrupt"] == 0 {
				t.Fatalf("degenerate class split: %v", classes)
			}
		})
	}
}
