// Race-hammer tests: many concurrent readers against a writer and the
// cleaner on one LLD, in-process and through a netld client/server pair.
// They are meaningful mostly under -race, but the payload cross-check also
// catches torn reads without it: every block always carries a
// self-identifying (block, version) header repeated to full length, and a
// reader validates the entire buffer against the version it parsed, so a
// read that observes half of one write and half of another fails loudly.
package ldtest

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
	"repro/internal/netld/client"
	"repro/internal/netld/server"
)

const (
	raceBlocks    = 48
	raceBlockSize = 2048
	raceOps       = 300
	raceReaders   = 8
)

// racePayload renders the content of block i at version v.
func racePayload(i, v int) []byte {
	header := fmt.Sprintf("hammer blk=%04d ver=%08d | ", i, v)
	buf := make([]byte, raceBlockSize)
	for off := 0; off < len(buf); off += len(header) {
		copy(buf[off:], header)
	}
	return buf
}

// parseVersion recovers (block, version) from a read buffer.
func parseVersion(buf []byte) (blk, ver int, err error) {
	_, err = fmt.Sscanf(string(buf[:32]), "hammer blk=%d ver=%d", &blk, &ver)
	return blk, ver, err
}

// hammer drives the reader/writer/lister mix against handles of one LD.
// versions is the shared memory model: versions[i] holds the newest
// version of block i whose Write has completed, so a read beginning
// afterwards must observe that version or a newer one.
func hammer(t *testing.T, readers []ld.Disk, writer ld.Disk, lister ld.Disk, lid ld.ListID, bids []ld.BlockID) {
	t.Helper()
	versions := make([]atomic.Int64, len(bids))
	var wg sync.WaitGroup
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}

	for r, d := range readers {
		wg.Add(1)
		go func(r int, d ld.Disk) {
			defer wg.Done()
			buf := make([]byte, raceBlockSize)
			for op := 0; op < raceOps && !failed.Load(); op++ {
				i := (op*7 + r*13) % len(bids)
				lo := versions[i].Load()
				n, err := d.Read(bids[i], buf)
				if err != nil {
					fail("reader %d: Read(block %d): %v", r, i, err)
					return
				}
				if n != raceBlockSize {
					fail("reader %d: block %d: %d bytes, want %d", r, i, n, raceBlockSize)
					return
				}
				blk, ver, err := parseVersion(buf[:n])
				if err != nil || blk != i {
					fail("reader %d: block %d: bad header %q (%v)", r, i, buf[:32], err)
					return
				}
				if int64(ver) < lo {
					fail("reader %d: block %d: version %d older than completed write %d", r, i, ver, lo)
					return
				}
				if want := racePayload(blk, ver); string(buf[:n]) != string(want) {
					fail("reader %d: block %d: torn read at version %d", r, i, ver)
					return
				}
			}
		}(r, d)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for op := 0; op < raceOps && !failed.Load(); op++ {
			i := op % len(bids)
			v := versions[i].Load() + 1
			if err := writer.Write(bids[i], racePayload(i, int(v))); err != nil {
				fail("writer: Write(block %d): %v", i, err)
				return
			}
			versions[i].Store(v)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for op := 0; op < raceOps/3 && !failed.Load(); op++ {
			ids, err := lister.ListBlocks(lid)
			if err != nil {
				fail("lister: ListBlocks: %v", err)
				return
			}
			if len(ids) != len(bids) {
				fail("lister: %d blocks, want %d", len(ids), len(bids))
				return
			}
			if _, err := lister.ListIndex(lid, op%len(bids)); err != nil {
				fail("lister: ListIndex: %v", err)
				return
			}
			if _, err := lister.Lists(); err != nil {
				fail("lister: Lists: %v", err)
				return
			}
		}
	}()

	wg.Wait()

	// Final cross-check: quiesced, every block must hold exactly its
	// newest completed version.
	buf := make([]byte, raceBlockSize)
	for i, b := range bids {
		n, err := readers[0].Read(b, buf)
		if err != nil {
			t.Fatalf("final read block %d: %v", i, err)
		}
		want := racePayload(i, int(versions[i].Load()))
		if string(buf[:n]) != string(want) {
			t.Fatalf("final state of block %d: %.40q, want %.40q", i, buf[:n], want)
		}
	}
}

// setupHammer creates the shared working set through d.
func setupHammer(t *testing.T, d ld.Disk) (ld.ListID, []ld.BlockID) {
	t.Helper()
	lid, err := d.NewList(ld.NilList, ld.ListHints{})
	if err != nil {
		t.Fatal(err)
	}
	bids := make([]ld.BlockID, raceBlocks)
	pred := ld.NilBlock
	for i := range bids {
		b, err := d.NewBlock(lid, pred)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(b, racePayload(i, 0)); err != nil {
			t.Fatal(err)
		}
		bids[i], pred = b, b
	}
	if err := d.Flush(ld.FailPower); err != nil {
		t.Fatal(err)
	}
	return lid, bids
}

// TestRaceHammerLocal hammers one in-process LLD: 8 readers, a writer, a
// lister, and an explicit-cleaner goroutine all share the instance. The
// writer churn also trips the automatic cleaner under the exclusive lock.
// The background variant runs the same mix with the instance-owned cleaner
// goroutine competing for the lock in bounded steps.
func TestRaceHammerLocal(t *testing.T) {
	t.Run("sync", func(t *testing.T) { runRaceHammerLocal(t, false) })
	t.Run("background", func(t *testing.T) { runRaceHammerLocal(t, true) })
}

func runRaceHammerLocal(t *testing.T, background bool) {
	d := disk.New(disk.DefaultConfig(16 << 20))
	o := lld.DefaultOptions()
	o.SegmentSize = 64 * 1024
	o.SummarySize = 8 * 1024
	if background {
		o.BackgroundClean = true
		o.CleanStepSegments = 1
	}
	if err := lld.Format(d, o); err != nil {
		t.Fatal(err)
	}
	l, err := lld.Open(d, o)
	if err != nil {
		t.Fatal(err)
	}
	lid, bids := setupHammer(t, l)

	// The cleaner runs concurrently with the hammer: Clean and Reorganize
	// take the exclusive lock and relocate live blocks while readers are
	// in flight.
	stop := make(chan struct{})
	var cleanerWG sync.WaitGroup
	cleanerWG.Add(1)
	go func() {
		defer cleanerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := l.Clean(1); err != nil {
				t.Errorf("cleaner: %v", err)
				return
			}
			if err := l.Reorganize(1); err != nil {
				t.Errorf("reorganize: %v", err)
				return
			}
		}
	}()

	readers := make([]ld.Disk, raceReaders)
	for i := range readers {
		readers[i] = l
	}
	hammer(t, readers, l, l, lid, bids)
	close(stop)
	cleanerWG.Wait()

	if viol := l.CheckInvariants(); len(viol) != 0 {
		t.Fatalf("invariants after hammer: %v", viol)
	}
	if err := l.Shutdown(false); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// newNetHammerFarm builds one LLD-backed netld server over net.Pipe and
// returns a connect function handing out independent client connections.
func newNetHammerFarm(t *testing.T, background bool) func() ld.Disk {
	t.Helper()
	d := disk.New(disk.DefaultConfig(16 << 20))
	o := lld.DefaultOptions()
	o.SegmentSize = 64 * 1024
	o.SummarySize = 8 * 1024
	if background {
		o.BackgroundClean = true
		o.CleanStepSegments = 1
	}
	if err := lld.Format(d, o); err != nil {
		t.Fatal(err)
	}
	l, err := lld.Open(d, o)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Disk:   l,
		Reopen: func() (ld.Disk, error) { return lld.Open(d, o) },
	})
	t.Cleanup(func() { srv.Close() })
	return func() ld.Disk {
		c, err := client.New(func() (net.Conn, error) {
			cl, sv := net.Pipe()
			go srv.ServeConn(sv)
			return cl, nil
		}, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
}

// TestRaceHammerNet runs the same hammer through a netld server with one
// client connection per goroutine, over net.Pipe.
func TestRaceHammerNet(t *testing.T) {
	run := func(background bool) func(*testing.T) {
		return func(t *testing.T) {
			connect := newNetHammerFarm(t, background)
			setupConn := connect()
			lid, bids := setupHammer(t, setupConn)

			readers := make([]ld.Disk, raceReaders)
			for i := range readers {
				readers[i] = connect()
			}
			hammer(t, readers, setupConn, connect(), lid, bids)
		}
	}
	t.Run("sync", run(false))
	t.Run("background", run(true))
}

// TestCleanerInterleavings drives every path into the cleaner at once —
// explicit Clean, Reorganize, the watermark check on the write path, and
// the background goroutine — against live readers, while a watchdog
// asserts the goroutine yields the exclusive lock between steps: a shared
// acquisition must never stall for more than a generous bound.
func TestCleanerInterleavings(t *testing.T) {
	d := disk.New(disk.DefaultConfig(2 << 20))
	o := lld.DefaultOptions()
	o.SegmentSize = 64 * 1024
	o.SummarySize = 8 * 1024
	o.BackgroundClean = true
	o.CleanStepSegments = 1
	if err := lld.Format(d, o); err != nil {
		t.Fatal(err)
	}
	l, err := lld.Open(d, o)
	if err != nil {
		t.Fatal(err)
	}
	lid, bids := setupHammer(t, l)

	stopClean := make(chan struct{})
	stop := make(chan struct{})
	var cleanWG, wg sync.WaitGroup
	// Explicit cleaner and reorganizer compete with the goroutine.
	cleanWG.Add(1)
	go func() {
		defer cleanWG.Done()
		for {
			select {
			case <-stopClean:
				return
			default:
			}
			if _, err := l.Clean(1); err != nil {
				t.Errorf("cleaner: %v", err)
				return
			}
			if err := l.Reorganize(1); err != nil {
				t.Errorf("reorganize: %v", err)
				return
			}
		}
	}()
	// Watchdog: per-step lock holds must stay bounded. 2s is far above
	// any single bounded step even under -race, and far below the hold of
	// a cleaner that stops yielding (a full pass on this geometry).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			start := time.Now()
			l.FreeSegments()
			if held := time.Since(start); held > 2*time.Second {
				t.Errorf("shared lock acquisition stalled %v; cleaner not yielding", held)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	readers := make([]ld.Disk, raceReaders)
	for i := range readers {
		readers[i] = l
	}
	hammer(t, readers, l, l, lid, bids)
	close(stopClean)
	cleanWG.Wait()

	// With the explicit cleaners stopped (the watchdog still running),
	// keep writing until the pool drains to the low watermark, the write
	// path signals the goroutine, and a background pass completes.
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; l.Stats().BGCleanPasses == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("background cleaner never completed a pass")
		}
		j := i % len(bids)
		if err := l.Write(bids[j], racePayload(j, 1<<20+i)); err != nil {
			t.Fatalf("drain write: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	if viol := l.CheckInvariants(); len(viol) != 0 {
		t.Fatalf("invariants after interleavings: %v", viol)
	}
	if err := l.Shutdown(false); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
