// Package ldtest holds implementation-independent contract tests for the
// Logical Disk interface: both implementations (log-structured LLD and
// update-in-place ULD) must expose identical semantics for every
// operation sequence.
package ldtest

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
	"repro/internal/uld"
)

func newLLD(t *testing.T) ld.Disk {
	t.Helper()
	d := disk.New(disk.DefaultConfig(16 << 20))
	o := lld.DefaultOptions()
	o.SegmentSize = 64 * 1024
	o.SummarySize = 8 * 1024
	if err := lld.Format(d, o); err != nil {
		t.Fatal(err)
	}
	l, err := lld.Open(d, o)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newULD(t *testing.T) ld.Disk {
	t.Helper()
	d := disk.New(disk.DefaultConfig(16 << 20))
	o := uld.DefaultOptions()
	if err := uld.Format(d, o); err != nil {
		t.Fatal(err)
	}
	u, err := uld.Open(d, o)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// state captures the externally visible content of an LD.
func state(t *testing.T, l ld.Disk) string {
	t.Helper()
	var b bytes.Buffer
	lists, err := l.Lists()
	if err != nil {
		t.Fatal(err)
	}
	for _, lid := range lists {
		ids, err := l.ListBlocks(lid)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "L%d:", lid)
		buf := make([]byte, l.MaxBlockSize())
		for _, blk := range ids {
			n, err := l.Read(blk, buf)
			if err != nil {
				t.Fatalf("read %d: %v", blk, err)
			}
			fmt.Fprintf(&b, " %d=%x", blk, buf[:n])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCrossImplementationLockstep drives the same random operation
// sequence against both implementations and compares the visible state
// and every return value along the way.
func TestCrossImplementationLockstep(t *testing.T) {
	runLockstep(t, newLLD, newULD, "lld", "uld")
}

// runLockstep is the contract suite's engine: it drives identical random
// operation sequences against two fixtures and requires identical return
// values and identical visible state throughout. Any ld.Disk — local or
// remote — must pass against any other.
func runLockstep(t *testing.T, newA, newB func(*testing.T) ld.Disk, nameA, nameB string) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			impls := []ld.Disk{newA(t), newB(t)}
			opRng := rand.New(rand.NewSource(seed))
			inARU := false
			for step := 0; step < 400; step++ {
				op := opRng.Intn(20)
				// Both implementations see identical random choices: a
				// per-step seed drives each applyOp run.
				stepSeed := seed*1000003 + int64(step)
				lists0, err := impls[0].Lists()
				if err != nil {
					t.Fatal(err)
				}
				res0 := applyOp(t, impls[0], op, rand.New(rand.NewSource(stepSeed)), lists0, inARU)
				lists1, err := impls[1].Lists()
				if err != nil {
					t.Fatal(err)
				}
				res1 := applyOp(t, impls[1], op, rand.New(rand.NewSource(stepSeed)), lists1, inARU)
				if res0 != res1 {
					t.Fatalf("step %d op %d diverged:\n %s: %s\n %s: %s", step, op, nameA, res0, nameB, res1)
				}
				switch res0 {
				case "beginaru false":
					inARU = true
				case "endaru false":
					inARU = false
				}
				if step%40 == 39 {
					if s0, s1 := state(t, impls[0]), state(t, impls[1]); s0 != s1 {
						t.Fatalf("step %d: states diverge:\n%s:\n%s\n%s:\n%s", step, nameA, s0, nameB, s1)
					}
				}
			}
			if inARU {
				for _, l := range impls {
					if err := l.EndARU(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if s0, s1 := state(t, impls[0]), state(t, impls[1]); s0 != s1 {
				t.Fatalf("final states diverge:\n%s:\n%s\n%s:\n%s", nameA, s0, nameB, s1)
			}
		})
	}
}

// applyOp executes one operation deterministically (all random choices are
// derived from rng, which both implementations see identically) and
// returns a canonical result string.
func applyOp(t *testing.T, l ld.Disk, op int, rng *rand.Rand, lists []ld.ListID, inARU bool) string {
	t.Helper()
	switch {
	case op < 3 || len(lists) == 0:
		lid, err := l.NewList(ld.NilList, ld.ListHints{})
		return fmt.Sprintf("newlist %v %v", lid, err != nil)
	case op < 10:
		lid := lists[rng.Intn(len(lists))]
		ids, err := l.ListBlocks(lid)
		if err != nil {
			return "listblocks-err"
		}
		pred := ld.NilBlock
		if len(ids) > 0 && rng.Intn(2) == 0 {
			pred = ids[rng.Intn(len(ids))]
		}
		b, err := l.NewBlock(lid, pred)
		if err != nil {
			return "newblock-err"
		}
		data := bytes.Repeat([]byte{byte(rng.Intn(256))}, rng.Intn(1500))
		werr := l.Write(b, data)
		return fmt.Sprintf("newblock %v write %v", b, werr != nil)
	case op < 13:
		lid := lists[rng.Intn(len(lists))]
		ids, _ := l.ListBlocks(lid)
		if len(ids) == 0 {
			return "skip"
		}
		b := ids[rng.Intn(len(ids))]
		err := l.DeleteBlock(b, lid, ld.NilBlock)
		return fmt.Sprintf("delete %v %v", b, err != nil)
	case op < 15:
		lid := lists[rng.Intn(len(lists))]
		ids, _ := l.ListBlocks(lid)
		if len(ids) < 2 {
			return "skip"
		}
		a, b := ids[0], ids[len(ids)-1]
		err := l.SwapContents(a, b)
		return fmt.Sprintf("swap %v", err != nil)
	case op < 17:
		lid := lists[rng.Intn(len(lists))]
		ids, _ := l.ListBlocks(lid)
		if len(ids) == 0 {
			return "skip"
		}
		i := rng.Intn(len(ids))
		b, err := l.ListIndex(lid, i)
		return fmt.Sprintf("index %d -> %v %v", i, b, err != nil)
	case op == 17:
		if inARU {
			return fmt.Sprintf("endaru %v", l.EndARU() != nil)
		}
		return fmt.Sprintf("beginaru %v", l.BeginARU() != nil)
	case op == 18:
		return fmt.Sprintf("flush %v", l.Flush(ld.FailPower) != nil)
	default:
		if len(lists) < 2 {
			return "skip"
		}
		src := lists[rng.Intn(len(lists))]
		dst := lists[rng.Intn(len(lists))]
		if src == dst {
			return "skip"
		}
		ids, _ := l.ListBlocks(src)
		if len(ids) == 0 {
			return "skip"
		}
		i := rng.Intn(len(ids))
		j := i + rng.Intn(len(ids)-i)
		err := l.MoveBlocks(ids[i], ids[j], src, dst, ld.NilBlock, ld.NilBlock)
		return fmt.Sprintf("move %v-%v %v", ids[i], ids[j], err != nil)
	}
}
