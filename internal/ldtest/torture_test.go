// Long-run power-failure torture: the full crash-point sweep per
// topology (the bounded smokes live in internal/torture itself), plus a
// netld server power-loss test — the server process dies mid-ARU together
// with the platter's volatile write cache, and the reopened store must
// have aborted the unit.
package ldtest

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
	"repro/internal/netld/client"
	"repro/internal/netld/server"
	"repro/internal/torture"
)

// runTorture executes every enumerated crash point for one config and
// reports each failure with its reproducer line.
func runTorture(t *testing.T, cfg torture.Config) {
	t.Helper()
	if testing.Short() {
		t.Skip("full crash-point sweep")
	}
	cfg.Logf = t.Logf
	res, err := torture.Run(cfg)
	if err != nil {
		t.Fatalf("torture run: %v", err)
	}
	if res.Points == 0 && cfg.Kind != torture.KindReclaim {
		t.Fatal("no crash points enumerated")
	}
	for _, f := range res.Failures {
		t.Errorf("crash point failed verification:\n  %s\n  %v", f.Repro, f.Err)
	}
}

func TestTortureLLDFull(t *testing.T) {
	runTorture(t, torture.Config{Kind: torture.KindLLD, Seed: 42})
}

func TestTortureStripeFull(t *testing.T) {
	runTorture(t, torture.Config{Kind: torture.KindStripe, Legs: 3, Seed: 42})
}

func TestTortureMirrorFull(t *testing.T) {
	runTorture(t, torture.Config{Kind: torture.KindMirror, Legs: 2, Seed: 42})
}

func TestTortureReclaimFull(t *testing.T) {
	// The damage search is seed-sensitive; sweep a few so at least one
	// produces a quarantined image to reclaim through.
	for _, seed := range []int64{2, 42, 43, 44} {
		runTorture(t, torture.Config{Kind: torture.KindReclaim, Seed: seed})
	}
}

func TestTortureRebuildFull(t *testing.T) {
	runTorture(t, torture.Config{Kind: torture.KindRebuild, Seed: 42})
}

// TestNetLDServerPowerLoss kills the netld server process together with
// the power rail under its platter at successive depths inside an open
// ARU. On reopen the unit's effects must be gone (all-or-nothing), the
// pre-ARU committed state must be intact, and a fresh server over the
// recovered disk must accept a new ARU.
func TestNetLDServerPowerLoss(t *testing.T) {
	valA := bytes.Repeat([]byte{0xA5}, 3000)
	valB := bytes.Repeat([]byte{0x5A}, 3000)
	filler := bytes.Repeat([]byte{0x3C}, 3900)

	for stage := 0; stage <= 3; stage++ {
		rail := disk.NewRail()
		cache := disk.NewWBCache(disk.New(disk.DefaultConfig(4<<20)), rail)
		o := lld.DefaultOptions()
		// Small segments so the mid-ARU writes force seals: the
		// uncommitted records reach the platter and recovery must
		// discard them, not merely lose them with the cache.
		o.SegmentSize = 32 * 1024
		o.SummarySize = 4 * 1024
		o.MaxBlockSize = 4096
		o.CompressBandwidth = 0
		if err := lld.Format(cache, o); err != nil {
			t.Fatal(err)
		}
		l, err := lld.Open(cache, o)
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{
			Disk:   l,
			Reopen: func() (ld.Disk, error) { return lld.Open(cache, o) },
		})
		dial := func() (net.Conn, error) {
			cl, sv := net.Pipe()
			go srv.ServeConn(sv)
			return cl, nil
		}
		c, err := client.New(dial, client.Options{})
		if err != nil {
			t.Fatal(err)
		}

		// Committed prologue.
		lid, err := c.NewList(ld.NilList, ld.ListHints{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := c.NewBlock(lid, ld.NilBlock)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Write(a, valA); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(ld.FailPower); err != nil {
			t.Fatal(err)
		}
		if err := rail.SyncAll(); err != nil {
			t.Fatal(err)
		}

		// Open an ARU and sink `stage` operations into it.
		if err := c.BeginARU(); err != nil {
			t.Fatal(err)
		}
		var ghost ld.BlockID
		ops := []func() error{
			func() error { return c.Write(a, valB) },
			func() error {
				var err error
				ghost, err = c.NewBlock(lid, a)
				return err
			},
			func() error { return c.Write(ghost, filler) },
		}
		for i := 0; i < stage && i < len(ops); i++ {
			if err := ops[i](); err != nil {
				t.Fatalf("stage %d op %d: %v", stage, i, err)
			}
		}

		// Power loss: the cache drops a seeded subset of unflushed
		// sectors and the server process dies with it.
		rail.PowerLoss(1000 + int64(stage))
		srv.Kill()
		c.Close()

		rail.Restart()
		l2, err := lld.Open(cache, o)
		if err != nil {
			t.Fatalf("stage %d reopen: %v", stage, err)
		}
		if rep := l2.RecoveryReport(); rep.Degraded() {
			t.Fatalf("stage %d: single clean platter reports degradation: %+v", stage, rep)
		}
		srv2 := server.New(server.Config{
			Disk:   l2,
			Reopen: func() (ld.Disk, error) { return lld.Open(cache, o) },
		})
		dial2 := func() (net.Conn, error) {
			cl, sv := net.Pipe()
			go srv2.ServeConn(sv)
			return cl, nil
		}
		c2, err := client.New(dial2, client.Options{})
		if err != nil {
			t.Fatal(err)
		}

		buf := make([]byte, len(valA))
		n, err := c2.Read(a, buf)
		if err != nil {
			t.Fatalf("stage %d: committed block unreadable: %v", stage, err)
		}
		if !bytes.Equal(buf[:n], valA) {
			t.Fatalf("stage %d: committed block lost its pre-ARU value (mid-ARU write leaked)", stage)
		}
		if stage >= 2 {
			ids, err := c2.ListBlocks(lid)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				if id == ghost {
					t.Fatalf("stage %d: block allocated inside the aborted ARU survived", stage)
				}
			}
		}
		if srv2.HasOpenARU() {
			t.Fatalf("stage %d: recovered server thinks an ARU is open", stage)
		}
		// The recovered store must accept a fresh unit end to end.
		if err := c2.BeginARU(); err != nil {
			t.Fatalf("stage %d: BeginARU after recovery: %v", stage, err)
		}
		if err := c2.Write(a, valB); err != nil {
			t.Fatal(err)
		}
		if err := c2.EndARU(); err != nil {
			t.Fatal(err)
		}
		c2.Close()
		srv2.Close()
	}
}
