package mdisk

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/disk"
)

func testDisks(t *testing.T, n int, capacity int64) []disk.Backend {
	t.Helper()
	kids := make([]disk.Backend, n)
	for i := range kids {
		kids[i] = disk.New(disk.DefaultConfig(capacity))
	}
	return kids
}

func newTestStripe(t *testing.T, n int, capacity int64) *Stripe {
	t.Helper()
	s, err := NewStripe(testDisks(t, n, capacity)...)
	if err != nil {
		t.Fatalf("NewStripe: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestStripeRoundTrip holds the stripe against a flat reference buffer
// under randomized sector-aligned writes and reads.
func TestStripeRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		s := newTestStripe(t, n, 1<<20)
		ss := int64(s.SectorSize())
		ref := make([]byte, s.Capacity())
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 200; i++ {
			sectors := int64(1 + rng.Intn(16))
			off := rng.Int63n(s.Capacity()/ss-sectors+1) * ss
			buf := make([]byte, sectors*ss)
			if rng.Intn(2) == 0 {
				rng.Read(buf)
				copy(ref[off:], buf)
				var err error
				if rng.Intn(4) == 0 {
					err = s.WriteAtNVRAM(buf, off)
				} else {
					err = s.WriteAt(buf, off)
				}
				if err != nil {
					t.Fatalf("n=%d write(%d,%d): %v", n, off, len(buf), err)
				}
			} else {
				if err := s.ReadAt(buf, off); err != nil {
					t.Fatalf("n=%d read(%d,%d): %v", n, off, len(buf), err)
				}
				if !bytes.Equal(buf, ref[off:off+int64(len(buf))]) {
					t.Fatalf("n=%d read(%d,%d): bytes differ from reference", n, off, len(buf))
				}
			}
		}
	}
}

// TestStripeGeometry checks capacity math and the access contract.
func TestStripeGeometry(t *testing.T) {
	kids := testDisks(t, 3, 1<<20)
	s, err := NewStripe(kids...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ss := int64(s.SectorSize())
	want := kids[0].Capacity() / ss * ss * 3
	if s.Capacity() != want {
		t.Fatalf("capacity = %d, want %d", s.Capacity(), want)
	}
	if s.Backends() != 3 {
		t.Fatalf("Backends() = %d", s.Backends())
	}
	buf := make([]byte, ss)
	if err := s.ReadAt(buf, 1); !errors.Is(err, disk.ErrUnaligned) {
		t.Fatalf("unaligned read: %v", err)
	}
	if err := s.ReadAt(buf, s.Capacity()); !errors.Is(err, disk.ErrOutOfRange) {
		t.Fatalf("out-of-range read: %v", err)
	}
	if err := s.WriteAt(buf[:1], 0); !errors.Is(err, disk.ErrUnaligned) {
		t.Fatalf("short write: %v", err)
	}
}

// TestStripeDistributesSectors proves the round-robin mapping: each leg
// of a full-stripe write receives exactly 1/N of the sectors, and the
// per-backend contents land where logical sector s -> (s mod N, s div N)
// says they should.
func TestStripeDistributesSectors(t *testing.T) {
	const n = 4
	kids := testDisks(t, n, 1<<20)
	s, err := NewStripe(kids...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ss := s.SectorSize()
	const sectors = 64
	buf := make([]byte, sectors*ss)
	for sec := 0; sec < sectors; sec++ {
		for b := 0; b < ss; b++ {
			buf[sec*ss+b] = byte(sec)
		}
	}
	if err := s.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, ss)
	for sec := 0; sec < sectors; sec++ {
		kid := kids[sec%n]
		if err := kid.ReadAt(one, int64(sec/n)*int64(ss)); err != nil {
			t.Fatalf("child read: %v", err)
		}
		if one[0] != byte(sec) {
			t.Fatalf("sector %d landed wrong: child %d phys %d holds %d", sec, sec%n, sec/n, one[0])
		}
	}
	st := s.Stats()
	if st.LegOps != n {
		t.Fatalf("full-stripe write issued %d legs, want %d", st.LegOps, n)
	}
}

// TestStripeConcurrent hammers the stripe from many goroutines to give
// the race detector something to chew on (distinct regions per worker,
// so contents stay checkable).
func TestStripeConcurrent(t *testing.T) {
	const workers = 8
	s := newTestStripe(t, 4, 4<<20)
	ss := int64(s.SectorSize())
	region := s.Capacity() / workers / ss * ss
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(w) * region
			buf := make([]byte, 8*ss)
			chk := make([]byte, 8*ss)
			for i := 0; i < 50; i++ {
				off := base + rng.Int63n(region/ss-8)*ss
				rng.Read(buf)
				if err := s.WriteAt(buf, off); err != nil {
					errs[w] = err
					return
				}
				if err := s.ReadAt(chk, off); err != nil {
					errs[w] = err
					return
				}
				if !bytes.Equal(buf, chk) {
					errs[w] = errors.New("read-after-write mismatch")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestStripeChildError propagates a leg failure to the caller.
func TestStripeChildError(t *testing.T) {
	kids := testDisks(t, 2, 1<<20)
	s, err := NewStripe(kids...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ss := s.SectorSize()
	buf := make([]byte, 4*ss)
	if err := s.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// Logical sector 1 lives on child 1 phys sector 0.
	kids[1].(*disk.Disk).InjectUnreadable(0, 1)
	if err := s.ReadAt(buf, 0); !errors.Is(err, disk.ErrUnreadable) {
		t.Fatalf("read over bad leg: %v, want ErrUnreadable", err)
	}
}
