package mdisk

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disk"
)

// Stripe interleaves logical sectors round-robin across its backends:
// logical sector s maps to backend s mod N, physical sector s div N.
// Every backend owns a buffered request queue drained by one worker
// goroutine, so the legs of a single request run in parallel and
// independent requests pipeline behind each other per backend without
// blocking the submitters.
//
// Stripe adds no redundancy: the first leg error fails the request.
type Stripe struct {
	kids     []disk.Backend
	queues   []chan *stripeReq
	wg       sync.WaitGroup
	ss       int
	perKid   int64 // physical sectors used on every backend
	capacity int64

	closed atomic.Bool
	stats  StripeStats
}

// StripeStats counts stripe-level events. Loaded atomically.
type StripeStats struct {
	Reads    int64 // logical read requests
	Writes   int64 // logical write requests (incl. NVRAM)
	LegOps   int64 // per-backend operations issued
	LegQueue int64 // operations that found their backend queue busy
}

const (
	opRead = iota
	opWrite
	opNVRAM
)

// stripeReq is one leg of a logical request, bound for one backend.
type stripeReq struct {
	op   int
	buf  []byte
	off  int64
	err  error
	done *sync.WaitGroup
}

// NewStripe builds a stripe over kids. All backends must share a sector
// size; the usable capacity is N times the smallest backend, so mixed
// sizes waste the excess of the larger ones.
func NewStripe(kids ...disk.Backend) (*Stripe, error) {
	ss, minCap, err := checkChildren(kids)
	if err != nil {
		return nil, err
	}
	perKid := minCap / int64(ss)
	s := &Stripe{
		kids:     kids,
		queues:   make([]chan *stripeReq, len(kids)),
		ss:       ss,
		perKid:   perKid,
		capacity: perKid * int64(ss) * int64(len(kids)),
	}
	for i := range kids {
		q := make(chan *stripeReq, 16)
		s.queues[i] = q
		s.wg.Add(1)
		go s.worker(kids[i], q)
	}
	return s, nil
}

// worker drains one backend's queue for the life of the stripe.
func (s *Stripe) worker(k disk.Backend, q chan *stripeReq) {
	defer s.wg.Done()
	for r := range q {
		switch r.op {
		case opRead:
			r.err = k.ReadAt(r.buf, r.off)
		case opWrite:
			r.err = k.WriteAt(r.buf, r.off)
		case opNVRAM:
			r.err = k.WriteAtNVRAM(r.buf, r.off)
		}
		r.done.Done()
	}
}

// Close stops the workers. The stripe must not be used afterwards; Close
// is idempotent.
func (s *Stripe) Close() {
	if s.closed.Swap(true) {
		return
	}
	for _, q := range s.queues {
		close(q)
	}
	s.wg.Wait()
}

// io decomposes one logical request into per-backend legs, queues them,
// and waits for all of them. For reads the legs land in a scratch
// buffer and are scattered back into p sector by sector; for writes p
// is gathered into the scratch first. The scratch is one allocation per
// request, partitioned among the legs.
func (s *Stripe) io(op int, p []byte, off int64) error {
	if err := checkAccess(p, off, s.ss, s.capacity); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	n := len(s.kids)
	ss := int64(s.ss)
	s0 := off / ss
	count := int64(len(p)) / ss

	tmp := make([]byte, len(p))
	reqs := make([]stripeReq, n)
	var wg sync.WaitGroup
	used := 0
	tmpOff := int64(0)
	for k := 0; k < n; k++ {
		// First logical sector in [s0, s0+count) owned by backend k.
		first := s0 + (int64(k)-s0%int64(n)+int64(n))%int64(n)
		if first >= s0+count {
			continue
		}
		legSectors := (s0+count-1-first)/int64(n) + 1
		legBuf := tmp[tmpOff*ss : (tmpOff+legSectors)*ss]
		tmpOff += legSectors
		if op != opRead {
			for j := int64(0); j < legSectors; j++ {
				sec := first + j*int64(n)
				copy(legBuf[j*ss:(j+1)*ss], p[(sec-s0)*ss:(sec-s0+1)*ss])
			}
		}
		r := &reqs[k]
		*r = stripeReq{op: op, buf: legBuf, off: (first / int64(n)) * ss, done: &wg}
		wg.Add(1)
		atomic.AddInt64(&s.stats.LegOps, 1)
		select {
		case s.queues[k] <- r:
		default:
			atomic.AddInt64(&s.stats.LegQueue, 1)
			s.queues[k] <- r
		}
		used |= 1 << k
	}
	wg.Wait()
	var firstErr error
	for k := 0; k < n; k++ {
		if used&(1<<k) == 0 {
			continue
		}
		if err := reqs[k].err; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if op == opRead {
		tmpOff = 0
		for k := 0; k < n; k++ {
			if used&(1<<k) == 0 {
				continue
			}
			first := s0 + (int64(k)-s0%int64(n)+int64(n))%int64(n)
			legSectors := (s0+count-1-first)/int64(n) + 1
			legBuf := tmp[tmpOff*ss : (tmpOff+legSectors)*ss]
			tmpOff += legSectors
			for j := int64(0); j < legSectors; j++ {
				sec := first + j*int64(n)
				copy(p[(sec-s0)*ss:(sec-s0+1)*ss], legBuf[j*ss:(j+1)*ss])
			}
		}
	}
	return nil
}

// ReadAt implements disk.Backend.
func (s *Stripe) ReadAt(p []byte, off int64) error {
	atomic.AddInt64(&s.stats.Reads, 1)
	return s.io(opRead, p, off)
}

// WriteAt implements disk.Backend.
func (s *Stripe) WriteAt(p []byte, off int64) error {
	atomic.AddInt64(&s.stats.Writes, 1)
	return s.io(opWrite, p, off)
}

// WriteAtNVRAM implements disk.Backend.
func (s *Stripe) WriteAtNVRAM(p []byte, off int64) error {
	atomic.AddInt64(&s.stats.Writes, 1)
	return s.io(opNVRAM, p, off)
}

// Capacity implements disk.Backend.
func (s *Stripe) Capacity() int64 { return s.capacity }

// SectorSize implements disk.Backend.
func (s *Stripe) SectorSize() int { return s.ss }

// Now implements disk.Backend: the composite clock is the slowest leg,
// since the legs of a request complete in parallel.
func (s *Stripe) Now() time.Duration {
	var max time.Duration
	for _, k := range s.kids {
		if t := k.Now(); t > max {
			max = t
		}
	}
	return max
}

// AdvanceIdle implements disk.Backend: CPU time passes on every leg.
func (s *Stripe) AdvanceIdle(d time.Duration) {
	for _, k := range s.kids {
		k.AdvanceIdle(d)
	}
}

// Sync implements disk.Syncer: every leg that offers a write barrier
// drains it. A stripe has no redundancy, so the first leg error fails
// the barrier — an acknowledged write may then still be volatile.
func (s *Stripe) Sync() error {
	for _, k := range s.kids {
		if sy, ok := k.(disk.Syncer); ok {
			if err := sy.Sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Backends reports the number of striped backends.
func (s *Stripe) Backends() int { return len(s.kids) }

// Child returns backing store i, for per-backend fault injection and
// image persistence.
func (s *Stripe) Child(i int) disk.Backend { return s.kids[i] }

// Stats returns a snapshot of the stripe counters.
func (s *Stripe) Stats() StripeStats {
	return StripeStats{
		Reads:    atomic.LoadInt64(&s.stats.Reads),
		Writes:   atomic.LoadInt64(&s.stats.Writes),
		LegOps:   atomic.LoadInt64(&s.stats.LegOps),
		LegQueue: atomic.LoadInt64(&s.stats.LegQueue),
	}
}

var _ disk.Backend = (*Stripe)(nil)
