package mdisk

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/disk"
)

// Online rebuild. A degraded mirror keeps running on its surviving
// replicas; AttachBlank hot-swaps a blank backend into the failed slot
// and Rebuild re-silvers it chunk by chunk while the mirror stays
// online, mirroring the background cleaner/scrubber pattern in lld: the
// exclusive lock is held for at most a few chunks at a time, then
// released and reacquired, so concurrent traffic sees bounded pauses.
// Writes that land during the rebuild go to the rebuilding replica too
// (write-all includes it), so a chunk is current whether it was copied
// before or after the overlapping write; the replica serves no reads
// until the copy completes.

// RebuildReport summarizes one completed rebuild.
type RebuildReport struct {
	Replica int           // slot that was re-silvered
	Chunks  int           // chunks copied
	Bytes   int64         // bytes copied
	Skipped int           // never-written chunks skipped
	Steps   int           // exclusive-lock acquisitions (bounded pauses)
	Elapsed time.Duration // virtual-clock time the copy consumed
}

// AttachBlank replaces replica slot i with backend b and marks it
// rebuilding. The slot must currently be failed (detach-then-replace);
// b must match the mirror's sector size and hold at least its capacity.
func (m *Mirror) AttachBlank(i int, b disk.Backend) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.kids) {
		return fmt.Errorf("mdisk: no replica slot %d", i)
	}
	if m.kids[i].st() != ReplicaFailed {
		return fmt.Errorf("mdisk: replica %d is %s, not failed", i, m.kids[i].st())
	}
	if b.SectorSize() != m.ss {
		return fmt.Errorf("mdisk: replacement sector size %d != mirror sector size %d", b.SectorSize(), m.ss)
	}
	if b.Capacity() < m.capacity {
		return fmt.Errorf("mdisk: replacement capacity %d < mirror capacity %d", b.Capacity(), m.capacity)
	}
	nr := &mirrorReplica{b: b}
	nr.state.Store(int32(ReplicaRebuilding))
	m.kids[i] = nr
	return nil
}

// Rebuild copies every chunk that has ever been written from a live
// replica onto rebuilding replica i, stepChunks chunks per exclusive
// lock hold (default 8 when <= 0). progress, when non-nil, is called
// between lock steps (outside the lock) with chunks examined so far and
// the total. On success the replica is promoted to live.
func (m *Mirror) Rebuild(i int, stepChunks int, progress func(done, total int)) (RebuildReport, error) {
	if stepChunks <= 0 {
		stepChunks = 8
	}
	rep := RebuildReport{Replica: i}
	total := m.chunks()
	start := m.Now()

	m.mu.Lock()
	if i < 0 || i >= len(m.kids) || m.kids[i].st() != ReplicaRebuilding {
		m.mu.Unlock()
		return rep, ErrNotRebuilding
	}
	target := m.kids[i]
	buf := make([]byte, m.chunk)
	for c := int64(0); c < int64(total); {
		stop := c + int64(stepChunks)
		for ; c < stop && c < int64(total); c++ {
			if !m.isWritten(c) {
				rep.Skipped++
				continue
			}
			off := c * m.chunk
			size := m.chunk
			if off+size > m.capacity {
				size = m.capacity - off
			}
			if err := m.readLiveLocked(buf[:size], off); err != nil {
				m.mu.Unlock()
				return rep, fmt.Errorf("mdisk: rebuild source read: %w", err)
			}
			if err := target.b.WriteAt(buf[:size], off); err != nil {
				m.fail(target)
				m.mu.Unlock()
				return rep, fmt.Errorf("mdisk: rebuild target write: %w", err)
			}
			rep.Chunks++
			rep.Bytes += size
		}
		rep.Steps++
		if c >= int64(total) {
			break
		}
		if target.st() != ReplicaRebuilding {
			m.mu.Unlock()
			return rep, ErrNotRebuilding // failed or detached mid-rebuild
		}
		// Bounded pause: let queued traffic in before the next batch.
		m.mu.Unlock()
		if progress != nil {
			progress(int(c), total)
		}
		runtime.Gosched()
		m.mu.Lock()
	}
	if !target.state.CompareAndSwap(int32(ReplicaRebuilding), int32(ReplicaLive)) {
		m.mu.Unlock()
		return rep, ErrNotRebuilding
	}
	atomic.AddInt64(&m.stats.RebuildsDone, 1)
	m.mu.Unlock()
	rep.Elapsed = m.Now() - start
	if progress != nil {
		progress(total, total)
	}
	return rep, nil
}

// readLiveLocked reads from the first live replica that answers,
// without rotation or healing (the rebuild wants any intact copy and
// runs under the exclusive lock). Callers hold m.mu.
func (m *Mirror) readLiveLocked(p []byte, off int64) error {
	var firstErr error
	for _, r := range m.kids {
		if r.st() != ReplicaLive {
			continue
		}
		if err := r.b.ReadAt(p, off); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return nil
	}
	if firstErr != nil {
		return firstErr
	}
	return ErrMirrorDown
}
