package mdisk

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disk"
)

// ReplicaState is the lifecycle of one mirror replica.
type ReplicaState int32

const (
	// ReplicaLive serves reads and receives writes.
	ReplicaLive ReplicaState = iota
	// ReplicaFailed is dropped from both paths (it crashed or every write
	// to it fails); it stays attached only so its slot can be replaced.
	ReplicaFailed
	// ReplicaRebuilding receives writes but never serves reads: its
	// contents are incomplete until Rebuild finishes re-silvering it.
	ReplicaRebuilding
)

func (s ReplicaState) String() string {
	switch s {
	case ReplicaLive:
		return "live"
	case ReplicaFailed:
		return "failed"
	case ReplicaRebuilding:
		return "rebuilding"
	}
	return "unknown"
}

// mirrorReplica pairs a backend with its lifecycle state. The state is
// atomic so the read path (shared lock) can fail a crashed replica
// without escalating to the exclusive lock.
type mirrorReplica struct {
	b     disk.Backend
	state atomic.Int32
}

func (r *mirrorReplica) st() ReplicaState { return ReplicaState(r.state.Load()) }

// Mirror keeps every sector on all of its replicas: writes go to all
// live and rebuilding replicas, reads are served by any live one.
//
// Concurrency: mu is a reader/writer lock. Writers (WriteAt,
// WriteAtNVRAM, rebuild copy steps) hold it exclusively, so the
// replicas never diverge observably. Readers (ReadAt, ReadAtVerified,
// VerifyReplicas) hold it shared; the heals they perform rewrite bytes
// that verified an instant ago under the same shared lock, which is
// sound because writers are excluded while any reader is inside —
// concurrent heals of the same range write identical bytes.
type Mirror struct {
	mu   sync.RWMutex
	kids []*mirrorReplica
	next atomic.Uint64 // read rotation counter

	ss       int
	capacity int64

	// Rebuild bookkeeping: written marks capacity/chunk-sized chunks that
	// have ever been written, so a rebuild copies only sectors that can
	// hold live data. Guarded by mu (set by writers, read by the rebuild
	// under the exclusive lock).
	chunk   int64
	written []uint64

	// crashHook, when set, is called between per-replica writes with a
	// site string ("mirror.write.<i>" after replica i accepted the
	// fan-out) so the torture harness can cut power while the replicas
	// disagree. Guarded by mu.
	crashHook func(site string)

	stats MirrorStats
}

// MirrorStats counts mirror-level events. Loaded atomically.
type MirrorStats struct {
	Reads           int64 // logical reads served
	Writes          int64 // logical writes accepted
	DegradedReads   int64 // reads that fell over past at least one bad replica copy
	Heals           int64 // replica copies repaired by rewriting good bytes
	VerifyRejects   int64 // replica copies rejected by the caller's verify function
	ReplicaFailures int64 // replicas marked failed
	RebuildsDone    int64 // rebuilds completed
}

// rebuildChunkSectors is the default re-silver granularity: chunks this
// many sectors long are tracked in the written bitmap and copied per
// rebuild step.
const rebuildChunkSectors = 64

// NewMirror builds a mirror over kids (normally two). All backends must
// share a sector size; capacity is the smallest backend's, rounded down
// to a whole number of sectors.
func NewMirror(kids ...disk.Backend) (*Mirror, error) {
	ss, minCap, err := checkChildren(kids)
	if err != nil {
		return nil, err
	}
	capacity := minCap / int64(ss) * int64(ss)
	m := &Mirror{
		kids:     make([]*mirrorReplica, len(kids)),
		ss:       ss,
		capacity: capacity,
		chunk:    int64(ss) * rebuildChunkSectors,
	}
	for i, k := range kids {
		m.kids[i] = &mirrorReplica{b: k}
	}
	m.written = make([]uint64, (m.chunks()+63)/64)
	return m, nil
}

func (m *Mirror) chunks() int { return int((m.capacity + m.chunk - 1) / m.chunk) }

func (m *Mirror) markWritten(off int64, n int) {
	for c := off / m.chunk; c <= (off+int64(n)-1)/m.chunk; c++ {
		m.written[c/64] |= 1 << (c % 64)
	}
}

func (m *Mirror) isWritten(c int64) bool { return m.written[c/64]&(1<<(c%64)) != 0 }

// fail marks replica r failed (sticky until its slot is replaced).
func (m *Mirror) fail(r *mirrorReplica) {
	if r.state.CompareAndSwap(int32(ReplicaLive), int32(ReplicaFailed)) ||
		r.state.CompareAndSwap(int32(ReplicaRebuilding), int32(ReplicaFailed)) {
		atomic.AddInt64(&m.stats.ReplicaFailures, 1)
	}
}

// write fans p out to every live and rebuilding replica. The write
// succeeds if at least one live replica accepted it; replicas whose
// write crashed are marked failed (a torn write must never be read
// back, and a crashed backend stays crashed until replaced).
func (m *Mirror) write(p []byte, off int64, nvram bool) error {
	if err := checkAccess(p, off, m.ss, m.capacity); err != nil {
		return err
	}
	atomic.AddInt64(&m.stats.Writes, 1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(p) > 0 {
		m.markWritten(off, len(p))
	}
	okLive := false
	var firstErr error
	for i, r := range m.kids {
		st := r.st()
		if st == ReplicaFailed {
			continue
		}
		var err error
		if nvram {
			err = r.b.WriteAtNVRAM(p, off)
		} else {
			err = r.b.WriteAt(p, off)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			m.fail(r)
			continue
		}
		if st == ReplicaLive {
			okLive = true
		}
		if m.crashHook != nil && i < len(m.kids)-1 {
			m.crashHook(mirrorWriteSite(i))
		}
	}
	if okLive {
		return nil
	}
	if firstErr != nil {
		return firstErr
	}
	return ErrMirrorDown
}

// WriteAt implements disk.Backend.
func (m *Mirror) WriteAt(p []byte, off int64) error { return m.write(p, off, false) }

// WriteAtNVRAM implements disk.Backend.
func (m *Mirror) WriteAtNVRAM(p []byte, off int64) error { return m.write(p, off, true) }

// ReadAt implements disk.Backend: read-any with fallback. Replicas are
// tried in rotation; a replica that errors is skipped (and healed by
// rewrite when the fault was a latent unreadable sector and a sibling
// served the bytes), a replica that crashed is marked failed.
func (m *Mirror) ReadAt(p []byte, off int64) error {
	_, err := m.readAny(p, off, nil)
	return err
}

// ReadAtVerified implements disk.MultiReader.
func (m *Mirror) ReadAtVerified(p []byte, off int64, verify func([]byte) bool) (int, error) {
	return m.readAny(p, off, func(b []byte) bool {
		ok := verify(b)
		if !ok {
			atomic.AddInt64(&m.stats.VerifyRejects, 1)
		}
		return ok
	})
}

// readAny is the shared read path: try live replicas in rotation until
// one yields acceptable bytes, then heal every copy that was tried and
// rejected. verify of nil accepts any bytes that read without error.
func (m *Mirror) readAny(p []byte, off int64, verify func([]byte) bool) (int, error) {
	if err := checkAccess(p, off, m.ss, m.capacity); err != nil {
		return 0, err
	}
	atomic.AddInt64(&m.stats.Reads, 1)
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := len(m.kids)
	start := int(m.next.Add(1))
	var (
		firstErr error
		readOK   bool  // some replica read without I/O error
		triedBad []int // replicas to heal if a good copy turns up
	)
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		r := m.kids[idx]
		if r.st() != ReplicaLive {
			continue
		}
		err := r.b.ReadAt(p, off)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if errors.Is(err, disk.ErrCrashed) {
				m.fail(r)
			} else if errors.Is(err, disk.ErrUnreadable) {
				triedBad = append(triedBad, idx)
			}
			continue
		}
		readOK = true
		if verify != nil && !verify(p) {
			triedBad = append(triedBad, idx)
			continue
		}
		// Good copy in hand: heal every replica we tried and rejected.
		if len(triedBad) > 0 {
			atomic.AddInt64(&m.stats.DegradedReads, 1)
		}
		healed := 0
		for _, bad := range triedBad {
			rb := m.kids[bad]
			if rb.st() != ReplicaLive {
				continue
			}
			if werr := rb.b.WriteAt(p, off); werr != nil {
				if errors.Is(werr, disk.ErrCrashed) {
					m.fail(rb)
				}
				continue
			}
			healed++
			atomic.AddInt64(&m.stats.Heals, 1)
		}
		return healed, nil
	}
	if verify != nil && readOK {
		return 0, disk.ErrNoValidReplica
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return 0, ErrMirrorDown
}

// VerifyReplicas implements disk.MultiReader: every live replica's copy
// of the range is checked against verify, and failed copies are healed
// from a verified one. On success p holds verified bytes.
func (m *Mirror) VerifyReplicas(p []byte, off int64, verify func([]byte) bool) (int, error) {
	if err := checkAccess(p, off, m.ss, m.capacity); err != nil {
		return 0, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var (
		good     = -1 // replica whose bytes are currently in p and verified
		bad      []int
		firstErr error
		readOK   bool
	)
	for idx, r := range m.kids {
		if r.st() != ReplicaLive {
			continue
		}
		if err := r.b.ReadAt(p, off); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if errors.Is(err, disk.ErrCrashed) {
				m.fail(r)
			} else {
				bad = append(bad, idx)
			}
			continue
		}
		readOK = true
		if verify(p) {
			good = idx
		} else {
			atomic.AddInt64(&m.stats.VerifyRejects, 1)
			bad = append(bad, idx)
		}
	}
	if good < 0 {
		if !readOK && firstErr != nil {
			return 0, firstErr
		}
		return 0, disk.ErrNoValidReplica
	}
	if len(bad) == 0 {
		return 0, nil
	}
	// p may hold a bad copy's bytes (replicas were read in index order);
	// restore the verified copy before healing from it.
	if err := m.kids[good].b.ReadAt(p, off); err != nil {
		return 0, err
	}
	if !verify(p) {
		return 0, disk.ErrNoValidReplica // rotted between reads: give up
	}
	healed := 0
	for _, idx := range bad {
		r := m.kids[idx]
		if r.st() != ReplicaLive {
			continue
		}
		if err := r.b.WriteAt(p, off); err != nil {
			if errors.Is(err, disk.ErrCrashed) {
				m.fail(r)
			}
			continue
		}
		healed++
		atomic.AddInt64(&m.stats.Heals, 1)
	}
	return healed, nil
}

// SetCrashHook installs (or clears, with nil) the torture harness's
// mid-fan-out crash callback. The hook runs with the mirror's exclusive
// lock held, after replica i accepted a write and before replica i+1
// sees it, at site "mirror.write.<i>".
func (m *Mirror) SetCrashHook(hook func(site string)) {
	m.mu.Lock()
	m.crashHook = hook
	m.mu.Unlock()
}

func mirrorWriteSite(i int) string { return "mirror.write." + strconv.Itoa(i) }

// Sync implements disk.Syncer: every replica that offers a write
// barrier drains it. A replica whose cache cannot drain has silently
// lost acknowledged writes, which is exactly a failed write — it is
// marked failed, and Sync succeeds while a live replica remains.
func (m *Mirror) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	okLive := false
	var firstErr error
	for _, r := range m.kids {
		st := r.st()
		if st == ReplicaFailed {
			continue
		}
		if s, ok := r.b.(disk.Syncer); ok {
			if err := s.Sync(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				m.fail(r)
				continue
			}
		}
		if st == ReplicaLive {
			okLive = true
		}
	}
	if okLive {
		return nil
	}
	if firstErr != nil {
		return firstErr
	}
	return ErrMirrorDown
}

// Replicas implements disk.MultiReader.
func (m *Mirror) Replicas() int { return len(m.kids) }

// Capacity implements disk.Backend.
func (m *Mirror) Capacity() int64 { return m.capacity }

// SectorSize implements disk.Backend.
func (m *Mirror) SectorSize() int { return m.ss }

// Now implements disk.Backend: the slowest replica bounds every
// write-all operation.
func (m *Mirror) Now() time.Duration {
	var max time.Duration
	for _, r := range m.kids {
		if t := r.b.Now(); t > max {
			max = t
		}
	}
	return max
}

// AdvanceIdle implements disk.Backend.
func (m *Mirror) AdvanceIdle(d time.Duration) {
	for _, r := range m.kids {
		r.b.AdvanceIdle(d)
	}
}

// Child returns replica i's backend, for per-replica fault injection
// and image persistence.
func (m *Mirror) Child(i int) disk.Backend {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.kids[i].b
}

// MarkAllWritten marks every chunk as potentially holding data, so a
// future Rebuild copies the whole capacity. Callers composing a mirror
// over preexisting (non-blank) backends — images loaded from files, say
// — must call this: the written bitmap only tracks writes made through
// the mirror, and skipping an "unwritten" chunk is only sound when the
// replicas were blank at construction.
func (m *Mirror) MarkAllWritten() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.written {
		m.written[i] = ^uint64(0)
	}
}

// State reports replica i's lifecycle state.
func (m *Mirror) State(i int) ReplicaState { return m.kids[i].st() }

// FailReplica administratively marks replica i failed (operator "pull
// the disk" action; also used by tests).
func (m *Mirror) FailReplica(i int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.fail(m.kids[i])
}

// Stats returns a snapshot of the mirror counters.
func (m *Mirror) Stats() MirrorStats {
	return MirrorStats{
		Reads:           atomic.LoadInt64(&m.stats.Reads),
		Writes:          atomic.LoadInt64(&m.stats.Writes),
		DegradedReads:   atomic.LoadInt64(&m.stats.DegradedReads),
		Heals:           atomic.LoadInt64(&m.stats.Heals),
		VerifyRejects:   atomic.LoadInt64(&m.stats.VerifyRejects),
		ReplicaFailures: atomic.LoadInt64(&m.stats.ReplicaFailures),
		RebuildsDone:    atomic.LoadInt64(&m.stats.RebuildsDone),
	}
}

var (
	_ disk.Backend     = (*Mirror)(nil)
	_ disk.MultiReader = (*Mirror)(nil)
)
