package mdisk

import (
	"fmt"
	"testing"

	"repro/internal/disk"
)

// benchDisks builds n fresh backends for a benchmark.
func benchDisks(n int, capacity int64) []disk.Backend {
	kids := make([]disk.Backend, n)
	for i := range kids {
		kids[i] = disk.New(disk.DefaultConfig(capacity))
	}
	return kids
}

// BenchmarkStripeRead measures sequential read throughput over stripes
// of 1–8 legs. Wall time is goroutine scheduling noise here; the number
// that matters is the virtual-clock MB/s metric, which models the legs'
// platters transferring in parallel and should scale with the leg count.
func BenchmarkStripeRead(b *testing.B) {
	const childCap = 16 << 20
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("backends=%d", n), func(b *testing.B) {
			s, err := NewStripe(benchDisks(n, childCap)...)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			chunk := int64(64 * s.SectorSize())
			buf := make([]byte, chunk)
			span := s.Capacity() / chunk * chunk
			for off := int64(0); off < span; off += chunk {
				if err := s.WriteAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(chunk)
			b.ResetTimer()
			start := s.Now()
			off := int64(0)
			for i := 0; i < b.N; i++ {
				if err := s.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
				off += chunk
				if off+chunk > span {
					off = 0
				}
			}
			virt := (s.Now() - start).Seconds()
			if virt > 0 {
				mb := float64(b.N) * float64(chunk) / (1 << 20)
				b.ReportMetric(mb/virt, "virtMB/s")
			}
		})
	}
}

// BenchmarkStripeWrite is the write-side counterpart.
func BenchmarkStripeWrite(b *testing.B) {
	const childCap = 16 << 20
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("backends=%d", n), func(b *testing.B) {
			s, err := NewStripe(benchDisks(n, childCap)...)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			chunk := int64(64 * s.SectorSize())
			buf := make([]byte, chunk)
			span := s.Capacity() / chunk * chunk
			b.SetBytes(chunk)
			b.ResetTimer()
			start := s.Now()
			off := int64(0)
			for i := 0; i < b.N; i++ {
				if err := s.WriteAt(buf, off); err != nil {
					b.Fatal(err)
				}
				off += chunk
				if off+chunk > span {
					off = 0
				}
			}
			virt := (s.Now() - start).Seconds()
			if virt > 0 {
				mb := float64(b.N) * float64(chunk) / (1 << 20)
				b.ReportMetric(mb/virt, "virtMB/s")
			}
		})
	}
}

// BenchmarkMirrorWrite measures the mirror's write fan-out cost across
// replica counts: media traffic multiplies by N but the virtual clock
// should barely move, because the replicas' arms travel together.
func BenchmarkMirrorWrite(b *testing.B) {
	const childCap = 16 << 20
	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			m, err := NewMirror(benchDisks(n, childCap)...)
			if err != nil {
				b.Fatal(err)
			}
			chunk := int64(64 * m.SectorSize())
			buf := make([]byte, chunk)
			span := m.Capacity() / chunk * chunk
			b.SetBytes(chunk)
			b.ResetTimer()
			start := m.Now()
			off := int64(0)
			for i := 0; i < b.N; i++ {
				if err := m.WriteAt(buf, off); err != nil {
					b.Fatal(err)
				}
				off += chunk
				if off+chunk > span {
					off = 0
				}
			}
			virt := (m.Now() - start).Seconds()
			if virt > 0 {
				mb := float64(b.N) * float64(chunk) / (1 << 20)
				b.ReportMetric(mb/virt, "virtMB/s")
			}
		})
	}
}
