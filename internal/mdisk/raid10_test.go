package mdisk

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/ld"
)

// newRaid10 builds a stripe over `lanes` two-way mirrors — RAID-10.
// raw[lane][replica] is the backing disk of each mirror member.
func newRaid10(t *testing.T, lanes int, capacity int64) (*Stripe, []*Mirror, [][]*disk.Disk) {
	t.Helper()
	mirrors := make([]*Mirror, lanes)
	kids := make([]disk.Backend, lanes)
	raw := make([][]*disk.Disk, lanes)
	for i := range mirrors {
		a := disk.New(disk.DefaultConfig(capacity))
		b := disk.New(disk.DefaultConfig(capacity))
		m, err := NewMirror(a, b)
		if err != nil {
			t.Fatalf("NewMirror lane %d: %v", i, err)
		}
		mirrors[i], kids[i], raw[i] = m, m, []*disk.Disk{a, b}
	}
	s, err := NewStripe(kids...)
	if err != nil {
		t.Fatalf("NewStripe over mirrors: %v", err)
	}
	return s, mirrors, raw
}

// TestRaid10RoundTrip: writes through the nested composition land on
// every mirror member — after a write burst the two replicas of each
// lane are byte-identical and reads return what was written.
func TestRaid10RoundTrip(t *testing.T) {
	s, _, raw := newRaid10(t, 2, 1<<20)
	ss := int64(s.SectorSize())
	rng := rand.New(rand.NewSource(11))
	buf := make([]byte, 8*ss)
	chk := make([]byte, 8*ss)
	for i := 0; i < 50; i++ {
		off := rng.Int63n(s.Capacity()/ss-8) * ss
		rng.Read(buf)
		if err := s.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
		if err := s.ReadAt(chk, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, chk) {
			t.Fatalf("read-after-write mismatch at %d", off)
		}
	}
	for lane, pair := range raw {
		a := make([]byte, pair[0].Capacity())
		b := make([]byte, pair[1].Capacity())
		if err := pair[0].ReadAt(a, 0); err != nil {
			t.Fatal(err)
		}
		if err := pair[1].ReadAt(b, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("lane %d replicas diverged", lane)
		}
	}
}

// TestRaid10DegradedReadHealsUnreadable: latent unreadable sectors on
// one member of every lane are read around by that lane's mirror and
// healed by rewrite — the stripe above never sees an error.
func TestRaid10DegradedReadHealsUnreadable(t *testing.T) {
	s, mirrors, raw := newRaid10(t, 2, 1<<20)
	ss := int64(s.SectorSize())
	span := 8 * ss // logical sectors 0..7 → physical 0..3 on each lane
	buf := make([]byte, span)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	if err := s.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// Alternate the failing member per lane so both replica indices are
	// exercised through the nesting.
	for lane, pair := range raw {
		pair[lane%2].InjectUnreadable(0, 4)
	}
	chk := make([]byte, span)
	for i := 0; i < 4; i++ {
		if err := s.ReadAt(chk, 0); err != nil {
			t.Fatalf("degraded read %d through stripe: %v", i, err)
		}
		if !bytes.Equal(buf, chk) {
			t.Fatalf("degraded read %d returned wrong bytes", i)
		}
	}
	for lane, m := range mirrors {
		if st := m.Stats(); st.DegradedReads == 0 || st.Heals == 0 {
			t.Fatalf("lane %d stats = %+v, want nonzero DegradedReads and Heals", lane, st)
		}
	}
	// Healed: the faulted members serve their sectors directly again.
	part := make([]byte, 4*ss)
	for lane, pair := range raw {
		if err := pair[lane%2].ReadAt(part, 0); err != nil {
			t.Fatalf("lane %d member still unreadable after heal: %v", lane, err)
		}
	}
}

// TestRaid10SurvivesOneReplicaPerLane: with one member of EVERY lane
// crashed, the composition keeps serving reads and writes; losing both
// members of a lane surfaces an error instead of garbage.
func TestRaid10SurvivesOneReplicaPerLane(t *testing.T) {
	s, mirrors, raw := newRaid10(t, 3, 1<<20)
	ss := int64(s.SectorSize())
	buf := make([]byte, 6*ss)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := s.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for lane, pair := range raw {
		pair[lane%2].Crash()
	}
	chk := make([]byte, len(buf))
	if err := s.ReadAt(chk, 0); err != nil {
		t.Fatalf("read with one member down per lane: %v", err)
	}
	if !bytes.Equal(buf, chk) {
		t.Fatal("degraded read returned wrong bytes")
	}
	if err := s.WriteAt(buf, 6*ss); err != nil {
		t.Fatalf("write with one member down per lane: %v", err)
	}
	for lane, m := range mirrors {
		if m.State(lane%2) != ReplicaFailed {
			t.Fatalf("lane %d member %d not marked failed", lane, lane%2)
		}
	}
	// Lose lane 0 entirely: requests touching it must now fail loudly.
	raw[0][1].Crash()
	if err := s.ReadAt(chk, 0); err == nil {
		t.Fatal("read succeeded with both members of lane 0 crashed")
	}
}

// TestRaid10RebuildUnderLLD: the full stack — LLD over stripe over
// mirrors. Lose a member of one lane mid-workload, write through the
// degradation, rebuild the member online, then lose its sibling: every
// block must come back from the rebuilt copy alone.
func TestRaid10RebuildUnderLLD(t *testing.T) {
	s, mirrors, _ := newRaid10(t, 2, 4<<20)
	l := openLLDOver(t, s)
	defer l.Shutdown(false)
	want := populate(t, l, 40)

	mirrors[0].FailReplica(0)
	// Degraded-mode writes the rebuild must carry over.
	for b := range want {
		data := bytes.Repeat([]byte{0xee}, 2048)
		if err := l.Write(b, data); err != nil {
			t.Fatal(err)
		}
		want[b] = data
		break
	}
	if err := l.Flush(ld.FailPower); err != nil {
		t.Fatal(err)
	}

	if err := mirrors[0].AttachBlank(0, disk.New(disk.DefaultConfig(4<<20))); err != nil {
		t.Fatal(err)
	}
	rep, err := mirrors[0].Rebuild(0, 4, nil)
	if err != nil {
		t.Fatalf("online rebuild of lane 0 member: %v", err)
	}
	if rep.Chunks == 0 {
		t.Fatalf("rebuild copied nothing: %+v", rep)
	}
	mirrors[0].FailReplica(1)
	buf := make([]byte, 4096)
	for b, data := range want {
		n, err := l.Read(b, buf)
		if err != nil || !bytes.Equal(buf[:n], data) {
			t.Fatalf("block %d wrong from rebuilt lane member (err=%v)", b, err)
		}
	}
}
