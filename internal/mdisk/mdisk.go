// Package mdisk presents the single-disk Backend surface over N backing
// stores. The paper's core claim is that the logical/physical split lets
// the disk layout change freely underneath an unmodified file system;
// the most production-relevant layout change is more than one disk. Two
// geometries are provided:
//
//   - Stripe: round-robin sector striping (RAID0). Logical sector s
//     lives on backend s mod N at physical sector s div N. Each backend
//     owns a request queue drained by its own goroutine, so one logical
//     request fans out across backends in parallel and independent
//     requests pipeline per backend. Capacity adds up; a single failure
//     fails the op (no redundancy).
//
//   - Mirror: write-all/read-any replication (RAID1). Reads rotate
//     across replicas; a replica that errors is read around (and healed
//     by rewriting when the fault is latent), a replica that crashes is
//     marked failed and dropped from both paths. The MultiReader
//     extension adds checksum-driven replica selection — the Logical
//     Disk passes its per-block CRC as the verify function, so a rotted
//     copy is never served and is healed from its intact sibling — and
//     an online rebuild re-silvers an attached blank replacement in
//     bounded lock steps.
//
// Both geometries implement disk.Backend, so an LLD formats, opens,
// recovers, cleans, and scrubs over them unchanged. Per-backend fault
// injection needs no extra plumbing: callers keep references to the
// children (see Child) and inject on exactly the replica or stripe leg
// they mean to damage.
package mdisk

import (
	"errors"
	"fmt"

	"repro/internal/disk"
)

// ErrMirrorDown reports that a mirror has no live replica left to serve
// a request.
var ErrMirrorDown = errors.New("mdisk: mirror has no live replica")

// ErrNotRebuilding reports a Rebuild call for a replica that is not in
// the rebuilding state.
var ErrNotRebuilding = errors.New("mdisk: replica is not rebuilding")

// checkChildren validates a backend set for either geometry: at least
// one child, all with the same sector size. It returns the common
// sector size and the smallest capacity.
func checkChildren(kids []disk.Backend) (ss int, minCap int64, err error) {
	if len(kids) == 0 {
		return 0, 0, fmt.Errorf("mdisk: need at least one backend")
	}
	ss = kids[0].SectorSize()
	minCap = kids[0].Capacity()
	for i, k := range kids {
		if k.SectorSize() != ss {
			return 0, 0, fmt.Errorf("mdisk: backend %d sector size %d != backend 0 sector size %d", i, k.SectorSize(), ss)
		}
		if c := k.Capacity(); c < minCap {
			minCap = c
		}
	}
	return ss, minCap, nil
}

// checkAccess validates one I/O request against the composite geometry.
func checkAccess(p []byte, off int64, ss int, capacity int64) error {
	if off%int64(ss) != 0 || len(p)%ss != 0 {
		return fmt.Errorf("%w: off=%d len=%d sector=%d", disk.ErrUnaligned, off, len(p), ss)
	}
	if off < 0 || off+int64(len(p)) > capacity {
		return fmt.Errorf("%w: [%d,%d) capacity %d", disk.ErrOutOfRange, off, off+int64(len(p)), capacity)
	}
	return nil
}
