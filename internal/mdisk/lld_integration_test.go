package mdisk

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
)

func lldTestOptions() lld.Options {
	o := lld.DefaultOptions()
	o.SegmentSize = 32 * 1024
	o.SummarySize = 4 * 1024
	o.MaxBlockSize = 4096
	o.CompressBandwidth = 0
	return o
}

func openLLDOver(t *testing.T, b disk.Backend) *lld.LLD {
	t.Helper()
	opts := lldTestOptions()
	if err := lld.Format(b, opts); err != nil {
		t.Fatalf("format: %v", err)
	}
	l, err := lld.Open(b, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l
}

// populate writes n blocks of deterministic contents and flushes, so
// everything lives on the media (not just the in-memory open segment).
func populate(t *testing.T, l *lld.LLD, n int) map[ld.BlockID][]byte {
	t.Helper()
	lid, err := l.NewList(ld.NilList, ld.ListHints{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	want := make(map[ld.BlockID][]byte, n)
	prev := ld.NilBlock
	for i := 0; i < n; i++ {
		b, err := l.NewBlock(lid, prev)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 4096)
		rng.Read(data)
		if err := l.Write(b, data); err != nil {
			t.Fatal(err)
		}
		want[b] = data
		prev = b
	}
	if err := l.Flush(ld.FailPower); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestWholeReplicaCorruptionSweep is the headline contract: with one
// mirror replica corrupted end to end, every live block reads back
// byte-identical with zero caller-visible errors, the self-heal
// counters move, and a subsequent scrub leaves the healed replica
// provably clean.
func TestWholeReplicaCorruptionSweep(t *testing.T) {
	m, raw := newTestMirror(t, 2, 8<<20)
	l := openLLDOver(t, m)
	defer l.Shutdown(false)
	want := populate(t, l, 120)

	// Rot replica 1 wholesale: every byte of every sector, silently.
	raw[1].CorruptRange(0, raw[1].Capacity(), 0xff)

	buf := make([]byte, 4096)
	for b, data := range want {
		n, err := l.Read(b, buf)
		if err != nil {
			t.Fatalf("read block %d over degraded mirror: %v", b, err)
		}
		if !bytes.Equal(buf[:n], data) {
			t.Fatalf("block %d: wrong bytes from degraded mirror", b)
		}
	}
	st := l.Stats()
	if st.DegradedReads == 0 || st.SelfHeals == 0 {
		t.Fatalf("lld stats after sweep = DegradedReads %d SelfHeals %d, want both nonzero",
			st.DegradedReads, st.SelfHeals)
	}
	if ms := m.Stats(); ms.Heals == 0 || ms.VerifyRejects == 0 {
		t.Fatalf("mirror stats after sweep = %+v, want nonzero Heals and VerifyRejects", ms)
	}

	// First scrub heals every copy the read sweep didn't happen to touch…
	res, err := l.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if len(res.Corrupt) != 0 {
		t.Fatalf("scrub found %d corrupt blocks on a mirrored store", len(res.Corrupt))
	}
	// …so a second scrub finds every replica of every block clean.
	healsBefore := l.Stats().ScrubHeals
	res, err = l.Scrub()
	if err != nil {
		t.Fatalf("second scrub: %v", err)
	}
	if len(res.Corrupt) != 0 {
		t.Fatalf("second scrub: %d corrupt blocks", len(res.Corrupt))
	}
	if heals := l.Stats().ScrubHeals - healsBefore; heals != 0 {
		t.Fatalf("second scrub still healed %d copies; replica not clean after first scrub", heals)
	}

	// And the blocks still read correctly, now without degradation.
	degradedBefore := l.Stats().DegradedReads
	for b, data := range want {
		n, err := l.Read(b, buf)
		if err != nil || !bytes.Equal(buf[:n], data) {
			t.Fatalf("block %d wrong after heal (err=%v)", b, err)
		}
	}
	if d := l.Stats().DegradedReads - degradedBefore; d != 0 {
		t.Fatalf("%d reads still degraded after full heal", d)
	}
}

// TestLLDOverStripe: the Logical Disk runs unchanged over a striped
// backend — format, write, flush, crash-reopen with the parallel
// recovery sweep, and read back.
func TestLLDOverStripe(t *testing.T) {
	s := newTestStripe(t, 4, 2<<20)
	l := openLLDOver(t, s)
	want := populate(t, l, 60)
	if err := l.Shutdown(false); err != nil { // unclean: force the sweep
		t.Fatal(err)
	}
	l2, err := lld.Open(s, lldTestOptions())
	if err != nil {
		t.Fatalf("reopen over stripe: %v", err)
	}
	defer l2.Shutdown(false)
	if rep := l2.RecoveryReport(); rep.Degraded() {
		t.Fatalf("clean stripe image recovered degraded: %+v", rep)
	}
	buf := make([]byte, 4096)
	for b, data := range want {
		n, err := l2.Read(b, buf)
		if err != nil || !bytes.Equal(buf[:n], data) {
			t.Fatalf("block %d wrong after stripe reopen (err=%v)", b, err)
		}
	}
}

// TestMirrorRecoveryHealsRottedSummary: mid-log rot confined to one
// replica must not quarantine anything — the recovery probe selects the
// intact copy, heals the rotted one, and every block stays readable.
func TestMirrorRecoveryHealsRottedSummary(t *testing.T) {
	m, raw := newTestMirror(t, 2, 8<<20)
	l := openLLDOver(t, m)
	want := populate(t, l, 80)
	if err := l.Shutdown(false); err != nil {
		t.Fatal(err)
	}
	// Rot a broad swath of replica 0 — summaries included.
	raw[0].CorruptRange(0, raw[0].Capacity()/2, 0x33)

	l2, err := lld.Open(m, lldTestOptions())
	if err != nil {
		t.Fatalf("reopen degraded mirror: %v", err)
	}
	defer l2.Shutdown(false)
	rep := l2.RecoveryReport()
	if rep.Degraded() {
		t.Fatalf("one-replica rot quarantined segments: %+v", rep)
	}
	buf := make([]byte, 4096)
	for b, data := range want {
		n, err := l2.Read(b, buf)
		if err != nil || !bytes.Equal(buf[:n], data) {
			t.Fatalf("block %d wrong after degraded reopen (err=%v)", b, err)
		}
	}
}

// TestMirrorRebuildUnderLLD: run a full LLD workload, lose a replica,
// rebuild online, then lose the *other* replica — the store must keep
// answering every read from the rebuilt copy alone.
func TestMirrorRebuildUnderLLD(t *testing.T) {
	m, _ := newTestMirror(t, 2, 8<<20)
	l := openLLDOver(t, m)
	defer l.Shutdown(false)
	want := populate(t, l, 60)

	m.FailReplica(1)
	// Degraded-mode writes the rebuild must carry over.
	for b := range want {
		data := bytes.Repeat([]byte{0xdd}, 2048)
		if err := l.Write(b, data); err != nil {
			t.Fatal(err)
		}
		want[b] = data
		break
	}
	if err := l.Flush(ld.FailPower); err != nil {
		t.Fatal(err)
	}

	if err := m.AttachBlank(1, disk.New(disk.DefaultConfig(8<<20))); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Rebuild(1, 4, nil)
	if err != nil {
		t.Fatalf("online rebuild: %v", err)
	}
	if rep.Chunks == 0 {
		t.Fatalf("rebuild copied nothing: %+v", rep)
	}
	m.FailReplica(0)
	buf := make([]byte, 4096)
	for b, data := range want {
		n, err := l.Read(b, buf)
		if err != nil || !bytes.Equal(buf[:n], data) {
			t.Fatalf("block %d wrong from rebuilt replica (err=%v)", b, err)
		}
	}
}
