package mdisk

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/disk"
)

// TestMirrorRebuild: fail a replica, keep writing, attach a blank, and
// rebuild; the rebuilt replica must then carry the full image, proven
// by failing the original and reading everything back through the
// replacement alone.
func TestMirrorRebuild(t *testing.T) {
	m, _ := newTestMirror(t, 2, 1<<20)
	ss := int64(m.SectorSize())
	rng := rand.New(rand.NewSource(11))
	ref := make([]byte, m.Capacity())
	writeRand := func(n int) {
		for i := 0; i < n; i++ {
			off := rng.Int63n(m.Capacity()/ss-8) * ss
			buf := make([]byte, 8*ss)
			rng.Read(buf)
			copy(ref[off:], buf)
			if err := m.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
		}
	}
	writeRand(40)
	m.FailReplica(1)
	writeRand(40) // degraded writes the rebuild must pick up

	if _, err := m.Rebuild(1, 0, nil); !errors.Is(err, ErrNotRebuilding) {
		t.Fatalf("rebuild of failed (unattached) replica: %v", err)
	}
	blank := disk.New(disk.DefaultConfig(1 << 20))
	if err := m.AttachBlank(1, blank); err != nil {
		t.Fatalf("AttachBlank: %v", err)
	}
	if m.State(1) != ReplicaRebuilding {
		t.Fatalf("state after attach = %v", m.State(1))
	}
	writeRand(10) // writes during the rebuild window also reach the target

	calls := 0
	rep, err := m.Rebuild(1, 4, func(done, total int) { calls++ })
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if m.State(1) != ReplicaLive {
		t.Fatalf("state after rebuild = %v", m.State(1))
	}
	if rep.Chunks == 0 || rep.Bytes == 0 || rep.Steps == 0 || calls == 0 {
		t.Fatalf("report = %+v (progress calls %d): want nonzero work", rep, calls)
	}
	if rep.Chunks+rep.Skipped != m.chunks() {
		t.Fatalf("report covers %d chunks, mirror has %d", rep.Chunks+rep.Skipped, m.chunks())
	}

	// The replacement alone must now serve the whole image.
	m.FailReplica(0)
	chk := make([]byte, 8*ss)
	for off := int64(0); off+int64(len(chk)) <= m.Capacity(); off += int64(len(chk)) * 4 {
		if err := m.ReadAt(chk, off); err != nil {
			t.Fatalf("read from rebuilt replica at %d: %v", off, err)
		}
		if !bytes.Equal(chk, ref[off:off+int64(len(chk))]) {
			t.Fatalf("rebuilt replica differs at %d", off)
		}
	}
	if st := m.Stats(); st.RebuildsDone != 1 {
		t.Fatalf("RebuildsDone = %d", st.RebuildsDone)
	}
}

// TestMirrorRebuildConcurrentWrites runs the rebuild while writers are
// hammering the mirror; afterwards the rebuilt replica must agree with
// every write, including those that raced the copy.
func TestMirrorRebuildConcurrentWrites(t *testing.T) {
	m, _ := newTestMirror(t, 2, 2<<20)
	ss := int64(m.SectorSize())
	const workers = 4
	region := m.Capacity() / workers / int64(ss) * int64(ss)

	seed := make([]byte, 4*ss)
	for off := int64(0); off+int64(len(seed)) <= m.Capacity(); off += region {
		if err := m.WriteAt(seed, off); err != nil {
			t.Fatal(err)
		}
	}
	m.FailReplica(1)
	if err := m.AttachBlank(1, disk.New(disk.DefaultConfig(2<<20))); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	final := make([][]byte, workers)
	offs := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			buf := make([]byte, 4*ss)
			off := int64(w) * region
			for i := 0; i < 30; i++ {
				rng.Read(buf)
				if err := m.WriteAt(buf, off); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
			final[w] = append([]byte(nil), buf...)
			offs[w] = off
		}(w)
	}
	rep, err := m.Rebuild(1, 2, nil)
	wg.Wait()
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if rep.Steps < 2 {
		t.Fatalf("rebuild took %d steps; bounded stepping not exercised", rep.Steps)
	}

	m.FailReplica(0)
	chk := make([]byte, 4*ss)
	for w := 0; w < workers; w++ {
		if final[w] == nil {
			continue
		}
		if err := m.ReadAt(chk, offs[w]); err != nil {
			t.Fatalf("post-rebuild read: %v", err)
		}
		if !bytes.Equal(chk, final[w]) {
			t.Fatalf("worker %d region: rebuilt replica missed a concurrent write", w)
		}
	}
}

// TestAttachBlankValidation covers the slot and geometry checks.
func TestAttachBlankValidation(t *testing.T) {
	m, _ := newTestMirror(t, 2, 1<<20)
	blank := disk.New(disk.DefaultConfig(1 << 20))
	if err := m.AttachBlank(0, blank); err == nil {
		t.Fatal("attached over a live replica")
	}
	if err := m.AttachBlank(5, blank); err == nil {
		t.Fatal("attached to a nonexistent slot")
	}
	m.FailReplica(0)
	if err := m.AttachBlank(0, disk.New(disk.DefaultConfig(1<<18))); err == nil {
		t.Fatal("attached an undersized replacement")
	}
	if err := m.AttachBlank(0, blank); err != nil {
		t.Fatalf("valid attach refused: %v", err)
	}
}
