package mdisk

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"

	"repro/internal/disk"
)

func newTestMirror(t *testing.T, n int, capacity int64) (*Mirror, []*disk.Disk) {
	t.Helper()
	raw := make([]*disk.Disk, n)
	kids := make([]disk.Backend, n)
	for i := range kids {
		raw[i] = disk.New(disk.DefaultConfig(capacity))
		kids[i] = raw[i]
	}
	m, err := NewMirror(kids...)
	if err != nil {
		t.Fatalf("NewMirror: %v", err)
	}
	return m, raw
}

// TestMirrorRoundTrip: basic read-after-write, and both replicas hold
// identical bytes after every write.
func TestMirrorRoundTrip(t *testing.T) {
	m, raw := newTestMirror(t, 2, 1<<20)
	ss := int64(m.SectorSize())
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 8*ss)
	chk := make([]byte, 8*ss)
	for i := 0; i < 50; i++ {
		off := rng.Int63n(m.Capacity()/ss-8) * ss
		rng.Read(buf)
		if err := m.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
		if err := m.ReadAt(chk, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, chk) {
			t.Fatalf("read-after-write mismatch at %d", off)
		}
		for r, d := range raw {
			if err := d.ReadAt(chk, off); err != nil {
				t.Fatalf("replica %d: %v", r, err)
			}
			if !bytes.Equal(buf, chk) {
				t.Fatalf("replica %d diverged at %d", r, off)
			}
		}
	}
}

// TestMirrorDegradedReadHealsUnreadable: a latent fault on one replica
// is read around and healed by rewrite.
func TestMirrorDegradedReadHealsUnreadable(t *testing.T) {
	m, raw := newTestMirror(t, 2, 1<<20)
	ss := int64(m.SectorSize())
	buf := make([]byte, 4*ss)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := m.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	raw[0].InjectUnreadable(0, 4)
	chk := make([]byte, 4*ss)
	// Read repeatedly: the rotation guarantees replica 0 is tried first
	// within two attempts, exercising the fallback; the first such read
	// heals the fault (rewriting a bad sector clears it).
	for i := 0; i < 4; i++ {
		if err := m.ReadAt(chk, 0); err != nil {
			t.Fatalf("degraded read %d: %v", i, err)
		}
		if !bytes.Equal(buf, chk) {
			t.Fatalf("degraded read %d returned wrong bytes", i)
		}
	}
	st := m.Stats()
	if st.DegradedReads == 0 || st.Heals == 0 {
		t.Fatalf("stats = %+v, want nonzero DegradedReads and Heals", st)
	}
	// Healed: replica 0 must now serve the range directly.
	if err := raw[0].ReadAt(chk, 0); err != nil {
		t.Fatalf("replica 0 still unreadable after heal: %v", err)
	}
	if !bytes.Equal(buf, chk) {
		t.Fatalf("replica 0 healed with wrong bytes")
	}
}

// TestMirrorReadAtVerified: silent rot on one replica is detected by the
// caller's verify function, served from the sibling, and healed.
func TestMirrorReadAtVerified(t *testing.T) {
	m, raw := newTestMirror(t, 2, 1<<20)
	ss := int64(m.SectorSize())
	buf := make([]byte, 2*ss)
	for i := range buf {
		buf[i] = byte(i * 3)
	}
	want := crc32.ChecksumIEEE(buf)
	if err := m.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	raw[1].CorruptRange(0, 2*ss, 0x5a)
	verify := func(b []byte) bool { return crc32.ChecksumIEEE(b) == want }
	chk := make([]byte, 2*ss)
	totalHealed := 0
	for i := 0; i < 4; i++ {
		healed, err := m.ReadAtVerified(chk, 0, verify)
		if err != nil {
			t.Fatalf("verified read %d: %v", i, err)
		}
		if !bytes.Equal(buf, chk) {
			t.Fatalf("verified read %d returned unverified bytes", i)
		}
		totalHealed += healed
	}
	if totalHealed == 0 {
		t.Fatalf("rotation never hit the rotted replica first; healed = 0")
	}
	// The heal rewrote replica 1 with good bytes.
	if err := raw[1].ReadAt(chk, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, chk) {
		t.Fatalf("replica 1 not healed")
	}
	// When every copy is rotted, the read must refuse, not serve garbage.
	raw[0].CorruptRange(0, 2*ss, 0x5a)
	raw[1].CorruptRange(0, 2*ss, 0x5a)
	if _, err := m.ReadAtVerified(chk, 0, verify); !errors.Is(err, disk.ErrNoValidReplica) {
		t.Fatalf("all-rotted read: %v, want ErrNoValidReplica", err)
	}
}

// TestMirrorVerifyReplicas: the scrub-path primitive checks and heals
// every copy, not just the one a read would pick.
func TestMirrorVerifyReplicas(t *testing.T) {
	m, raw := newTestMirror(t, 3, 1<<20)
	ss := int64(m.SectorSize())
	buf := make([]byte, ss)
	for i := range buf {
		buf[i] = 0xab
	}
	want := crc32.ChecksumIEEE(buf)
	if err := m.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	raw[0].CorruptRange(0, ss, 1)
	raw[2].CorruptRange(0, ss, 2)
	verify := func(b []byte) bool { return crc32.ChecksumIEEE(b) == want }
	chk := make([]byte, ss)
	healed, err := m.VerifyReplicas(chk, 0, verify)
	if err != nil {
		t.Fatal(err)
	}
	if healed != 2 {
		t.Fatalf("healed = %d, want 2", healed)
	}
	if !bytes.Equal(buf, chk) {
		t.Fatalf("VerifyReplicas left unverified bytes in p")
	}
	for r, d := range raw {
		if err := d.ReadAt(chk, 0); err != nil || !bytes.Equal(buf, chk) {
			t.Fatalf("replica %d not healed (err=%v)", r, err)
		}
	}
	// A second pass finds nothing to do.
	if healed, err := m.VerifyReplicas(chk, 0, verify); err != nil || healed != 0 {
		t.Fatalf("second pass: healed=%d err=%v", healed, err)
	}
}

// TestMirrorReplicaCrash: a crashed replica is marked failed, writes and
// reads continue on the survivor, and losing the survivor downs the
// mirror.
func TestMirrorReplicaCrash(t *testing.T) {
	m, raw := newTestMirror(t, 2, 1<<20)
	ss := int64(m.SectorSize())
	buf := make([]byte, ss)
	if err := m.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	raw[0].Crash()
	// Writes fan out, notice the crash, and still succeed on replica 1.
	if err := m.WriteAt(buf, int64(ss)); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	if m.State(0) != ReplicaFailed {
		t.Fatalf("replica 0 state = %v, want failed", m.State(0))
	}
	if st := m.Stats(); st.ReplicaFailures != 1 {
		t.Fatalf("ReplicaFailures = %d, want 1", st.ReplicaFailures)
	}
	for i := 0; i < 4; i++ {
		if err := m.ReadAt(buf, 0); err != nil {
			t.Fatalf("degraded read: %v", err)
		}
	}
	raw[1].Crash()
	if err := m.ReadAt(buf, 0); err == nil {
		t.Fatal("read with every replica crashed succeeded")
	}
	if err := m.WriteAt(buf, 0); err == nil {
		t.Fatal("write with every replica crashed succeeded")
	}
}
