package spritelfs

import "testing"

func TestPaperNotation(t *testing.T) {
	cases := []struct {
		c    Cost
		want string
	}{
		{CreateOrDeleteSprite(), "1+2δ+2ε"},
		{CreateOrDeleteLLD(), "1+2ε"},
		{OverwriteSprite(DepthDirect), "1+δ+ε"},
		{OverwriteSprite(DepthIndirect), "2+δ+ε"},
		{OverwriteSprite(DepthDouble), "3+δ+ε"},
		{OverwriteLLD(DepthDouble), "1+ε"},
		{AppendSprite(DepthDirect), "1+δ+ε"},
		{AppendLLD(DepthDirect, false), "1+ε"},
		{AppendLLD(DepthIndirect, false), "2+ε"},
		{AppendLLD(DepthDouble, true), "3+ε"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}

func TestLLDNeverCostsMoreThanSprite(t *testing.T) {
	// For every δ,ε in range and every operation/depth, MINIX LLD's cost
	// must be less than or equal to Sprite LFS's (Table 6's point).
	for _, delta := range []float64{0, 0.25, 0.5, 1} {
		for _, eps := range []float64{0.01, 0.1, 0.3} {
			if CreateOrDeleteLLD().Eval(delta, eps) > CreateOrDeleteSprite().Eval(delta, eps) {
				t.Fatal("create: LLD costs more")
			}
			for _, d := range []FileDepth{DepthDirect, DepthIndirect, DepthDouble} {
				if OverwriteLLD(d).Eval(delta, eps) > OverwriteSprite(d).Eval(delta, eps) {
					t.Fatalf("overwrite depth %d: LLD costs more", d)
				}
				if AppendLLD(d, d == DepthDouble).Eval(delta, eps) > AppendSprite(d).Eval(delta, eps) {
					t.Fatalf("append depth %d: LLD costs more", d)
				}
			}
		}
	}
}

func TestTable6Shape(t *testing.T) {
	rows := Table6()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Operation == "" || len(rows[1].Sprite) != 3 || len(rows[2].LLD) != 3 {
		t.Fatalf("unexpected table shape: %+v", rows)
	}
}

func TestEval(t *testing.T) {
	c := Cost{Blocks: 2, NDelta: 1, NEpsilon: 2}
	if got := c.Eval(0.5, 0.1); got != 2.7 {
		t.Fatalf("Eval=%v", got)
	}
}
