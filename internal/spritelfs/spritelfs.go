// Package spritelfs reproduces the analytic write-cost comparison of
// Table 6 in "The Logical Disk" (§5.1): the number of blocks each file
// system writes per operation, expressed in the paper's symbolic terms.
//
// Sprite LFS stores physical disk addresses in its data structures, so
// moving or rewriting a block cascades: the i-node changes (its address
// table points at the new location), blocks of the i-node map change, and
// for large files indirect and double-indirect blocks change too. MINIX
// LLD stores logical block numbers, which never change, so none of those
// cascading updates occur; i-nodes are still written where POSIX requires
// a recoverable modification time.
//
// The symbolic parameters:
//
//	ε ("epsilon") — the cost of writing one dirty i-node. Both systems
//	   collect dirty i-nodes into shared blocks, so ε is much less than a
//	   block.
//	δ ("delta")   — the per-operation share of an i-node map block in
//	   Sprite LFS (the map is written at checkpoints, so many operations
//	   share each block); 0 ≤ δ ≤ 1. MINIX LLD has no i-node map.
package spritelfs

import "fmt"

// Cost is a symbolic block-write count of the form blocks + nDelta·δ + nEpsilon·ε.
type Cost struct {
	Blocks   float64 // whole data/metadata blocks
	NDelta   int     // i-node map block shares (Sprite LFS only)
	NEpsilon int     // dirty i-node writes
}

// String renders the cost in the paper's notation, e.g. "1+2δ+2ε".
func (c Cost) String() string {
	s := fmt.Sprintf("%g", c.Blocks)
	if c.NDelta == 1 {
		s += "+δ"
	} else if c.NDelta > 1 {
		s += fmt.Sprintf("+%dδ", c.NDelta)
	}
	if c.NEpsilon == 1 {
		s += "+ε"
	} else if c.NEpsilon > 1 {
		s += fmt.Sprintf("+%dε", c.NEpsilon)
	}
	return s
}

// Eval substitutes numeric values for δ and ε.
func (c Cost) Eval(delta, epsilon float64) float64 {
	return c.Blocks + float64(c.NDelta)*delta + float64(c.NEpsilon)*epsilon
}

// FileDepth classifies how deep a file's block pointers reach.
type FileDepth int

// Depths for Overwrite and Append.
const (
	DepthDirect FileDepth = iota // block reached from the i-node
	DepthIndirect
	DepthDouble
)

// CreateOrDeleteSprite returns Sprite LFS's cost to create an empty file in
// an existing directory or delete an empty file: the directory data block,
// two dirty i-nodes, and two i-node map block shares (paper: 1+2δ+2ε).
func CreateOrDeleteSprite() Cost { return Cost{Blocks: 1, NDelta: 2, NEpsilon: 2} }

// CreateOrDeleteLLD returns MINIX LLD's cost for the same operation: the
// directory block and two dirty i-nodes, no map blocks (paper: 1+2ε).
func CreateOrDeleteLLD() Cost { return Cost{Blocks: 1, NEpsilon: 2} }

// OverwriteSprite returns Sprite LFS's cost to overwrite one existing data
// block: the block itself plus the cascade — i-node (its block pointer
// changed), i-node map share, and for deeper files the indirect and
// double-indirect blocks (paper: 1+δ+ε, 2+δ+ε or 3+δ+ε).
func OverwriteSprite(depth FileDepth) Cost {
	return Cost{Blocks: 1 + float64(depth), NDelta: 1, NEpsilon: 1}
}

// OverwriteLLD returns MINIX LLD's cost to overwrite one block: the block
// and the i-node (mtime), regardless of file depth — logical addresses do
// not change, so no pointer blocks are rewritten (paper: always 1+ε).
func OverwriteLLD(depth FileDepth) Cost { return Cost{Blocks: 1, NEpsilon: 1} }

// AppendSprite returns Sprite LFS's cost to append one block (paper:
// 1+δ+ε, 2+δ+ε or 3+δ+ε depending on depth).
func AppendSprite(depth FileDepth) Cost {
	return Cost{Blocks: 1 + float64(depth), NDelta: 1, NEpsilon: 1}
}

// AppendLLD returns MINIX LLD's cost to append one block: usually the
// block and the i-node; appending into the indirect range also writes the
// indirect block (a new logical pointer is inserted); only when a brand
// new indirect block must be created under the double-indirect block does
// a third block get written (paper: 1+ε or 2+ε, rarely 3+ε).
func AppendLLD(depth FileDepth, newIndirect bool) Cost {
	switch {
	case depth == DepthDirect:
		return Cost{Blocks: 1, NEpsilon: 1}
	case depth == DepthDouble && newIndirect:
		return Cost{Blocks: 3, NEpsilon: 1}
	default:
		return Cost{Blocks: 2, NEpsilon: 1}
	}
}

// Row is one line of Table 6.
type Row struct {
	Operation string
	Sprite    []Cost
	LLD       []Cost
}

// Table6 returns the full symbolic comparison.
func Table6() []Row {
	return []Row{
		{
			Operation: "Creating or deleting a file",
			Sprite:    []Cost{CreateOrDeleteSprite()},
			LLD:       []Cost{CreateOrDeleteLLD()},
		},
		{
			Operation: "Overwriting a block",
			Sprite: []Cost{
				OverwriteSprite(DepthDirect),
				OverwriteSprite(DepthIndirect),
				OverwriteSprite(DepthDouble),
			},
			LLD: []Cost{OverwriteLLD(DepthDirect)},
		},
		{
			Operation: "Appending a block",
			Sprite: []Cost{
				AppendSprite(DepthDirect),
				AppendSprite(DepthIndirect),
				AppendSprite(DepthDouble),
			},
			LLD: []Cost{
				AppendLLD(DepthDirect, false),
				AppendLLD(DepthIndirect, false),
				AppendLLD(DepthDouble, true),
			},
		},
	}
}
