package torture

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ld"
	"repro/internal/lld"
)

// The shadow logical model. The workload records every operation the
// Logical Disk acknowledged; after a crash and recovery the model says
// which observable states are legal:
//
//   - A block's readable value must be one the workload actually wrote
//     and had acknowledged (or had in flight at the instant of the
//     loss). Anything else is ghost data — including values written
//     inside an ARU that never committed, which recovery promises to
//     abort.
//   - Writes older than the durability floor — the newest version
//     acknowledged before a successful Flush + device Sync — can never
//     reappear: the floor's record is on the platter and recovery picks
//     newest-timestamp-wins.
//   - A block whose floor version exists must be readable (or the
//     recovery report must admit degradation). Blocks above the floor
//     may legally vanish: their records were still in the write cache.
//   - ld.ErrCorrupt is acceptable only when the recovery report says
//     the image is degraded.
//
// Every value the workload writes is unique (it embeds the seed and a
// monotonic counter), so value equality identifies the exact
// acknowledged version and ghost detection needs no separate bookkeeping.

// version is one acknowledged state of a block: a written value, or a
// tombstone (val == nil) for a delete. list records the block's list
// at acknowledgment time, for the floor membership check.
type version struct {
	val  []byte
	list ld.ListID
}

// bstate is the shadow state of one logical block number (spanning
// delete + reallocate reuse: the timeline just continues).
type bstate struct {
	vers  []version
	floor int // index into vers durable at the last Flush+Sync; -1 none
	// inflight holds values that may legally appear even though they
	// were never acknowledged: the write racing the power loss, or the
	// writes of an ARU whose EndARU was in flight.
	inflight [][]byte
}

func (b *bstate) acceptableValue(got []byte) bool {
	lo := 0
	if b.floor >= 0 {
		lo = b.floor
	}
	for i := lo; i < len(b.vers); i++ {
		if b.vers[i].val != nil && bytes.Equal(b.vers[i].val, got) {
			return true
		}
	}
	for _, v := range b.inflight {
		if bytes.Equal(v, got) {
			return true
		}
	}
	return false
}

// preFloorValue reports whether got matches an acknowledged version
// older than the durability floor. Such a value must never surface on an
// undegraded image (the floor's record is on the platter and newest
// wins), but when the newer record was destroyed and its segment
// quarantined, the older version is recovery's best surviving evidence.
func (b *bstate) preFloorValue(got []byte) bool {
	for i := 0; i < b.floor && i < len(b.vers); i++ {
		if b.vers[i].val != nil && bytes.Equal(b.vers[i].val, got) {
			return true
		}
	}
	return false
}

func (b *bstate) mayNotExist(degraded bool) bool {
	if degraded || b.floor < 0 {
		return true
	}
	for i := b.floor; i < len(b.vers); i++ {
		if b.vers[i].val == nil {
			return true // a delete at or above the floor may have won
		}
	}
	return false
}

// model is the full shadow state.
type model struct {
	blocks map[ld.BlockID]*bstate
	lists  map[ld.ListID]bool
}

func newModel() *model {
	return &model{blocks: make(map[ld.BlockID]*bstate), lists: make(map[ld.ListID]bool)}
}

func (m *model) state(b ld.BlockID) *bstate {
	bs := m.blocks[b]
	if bs == nil {
		bs = &bstate{floor: -1}
		m.blocks[b] = bs
	}
	return bs
}

func (m *model) ack(b ld.BlockID, val []byte, list ld.ListID) {
	m.state(b).vers = append(m.state(b).vers, version{val: val, list: list})
}

// advanceFloor marks every block's newest acknowledged version durable:
// the caller just saw Flush and a device-level Sync both succeed.
func (m *model) advanceFloor() {
	for _, bs := range m.blocks {
		if len(bs.vers) > 0 {
			bs.floor = len(bs.vers) - 1
		}
	}
}

// verify checks a recovered instance against the model. It returns the
// first violation found, nil when the recovered state is legal.
func (m *model) verify(l *lld.LLD, rep lld.RecoveryReport) error {
	degraded := rep.Degraded()
	if viol := l.CheckInvariants(); len(viol) != 0 {
		return fmt.Errorf("recovered state violates invariants (degraded=%v, quarantined=%d): %v",
			degraded, len(rep.QuarantinedSegments), viol)
	}
	buf := make([]byte, l.MaxBlockSize())
	bids := make([]ld.BlockID, 0, len(m.blocks))
	for b := range m.blocks {
		bids = append(bids, b)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	for _, bid := range bids {
		bs := m.blocks[bid]
		n, err := l.Read(bid, buf)
		switch {
		case err == nil:
			if !bs.acceptableValue(buf[:n]) {
				if degraded && bs.preFloorValue(buf[:n]) {
					// An acknowledged-but-superseded version resurfaced
					// because the newer record's segment was quarantined;
					// with the degradation admitted, the old version is
					// the best surviving evidence, not a ghost.
					continue
				}
				return fmt.Errorf("block %d: recovered %d bytes matching no acknowledged version (degraded=%v, preFloor=%v, floor=%d, vers=%d, inflight=%d)",
					bid, n, degraded, bs.preFloorValue(buf[:n]), bs.floor, len(bs.vers), len(bs.inflight))
			}
		case errors.Is(err, ld.ErrBadBlock):
			if !bs.mayNotExist(degraded) {
				return fmt.Errorf("block %d: durable below the floor but recovered as nonexistent", bid)
			}
		case errors.Is(err, ld.ErrCorrupt):
			if !degraded {
				return fmt.Errorf("block %d: reads corrupt but the recovery report admits no degradation", bid)
			}
		default:
			return fmt.Errorf("block %d: unexpected read error after recovery: %w", bid, err)
		}
	}
	if !degraded {
		if err := m.verifyMembership(l); err != nil {
			return err
		}
	}
	return nil
}

// verifyMembership checks that every block whose newest version is at
// the durability floor sits on the list it was acknowledged on. Blocks
// with post-floor activity are exempt — their membership records may
// legally have been lost with the cache.
func (m *model) verifyMembership(l *lld.LLD) error {
	members := make(map[ld.ListID]map[ld.BlockID]bool)
	lids, err := l.Lists()
	if err != nil {
		return fmt.Errorf("Lists after recovery: %w", err)
	}
	for _, lid := range lids {
		bs, err := l.ListBlocks(lid)
		if err != nil {
			return fmt.Errorf("ListBlocks(%d) after recovery: %w", lid, err)
		}
		set := make(map[ld.BlockID]bool, len(bs))
		for _, b := range bs {
			set[b] = true
		}
		members[lid] = set
	}
	for bid, bs := range m.blocks {
		if bs.floor < 0 || bs.floor != len(bs.vers)-1 {
			continue
		}
		v := bs.vers[bs.floor]
		if v.val == nil {
			continue // floored tombstone: nonexistence already checked
		}
		if !members[v.list][bid] {
			return fmt.Errorf("block %d: durable member of list %d but absent from it after recovery", bid, v.list)
		}
	}
	return nil
}

// errPowerLost is the workload's internal signal that the simulated
// power went out mid-operation; the run then moves to recovery.
var errPowerLost = errors.New("torture: power lost")

// workload drives a deterministic operation mix against one Logical
// Disk instance, recording acknowledgments in the shadow model. The
// operation sequence is a pure function of the seed, so the reference
// run and every crash-point run see identical histories up to the cut.
type workload struct {
	l    *lld.LLD
	r    *rig
	m    *model
	rng  *rand.Rand
	seed int64

	lists     []ld.ListID
	blocks    []ld.BlockID
	blockList map[ld.BlockID]ld.ListID
	valSeq    int64
	opIndex   int
	target    point // op-granular crash point, if any
}

func newWorkload(l *lld.LLD, r *rig, seed int64, target point) *workload {
	return &workload{
		l: l, r: r, m: newModel(),
		rng:       rand.New(rand.NewSource(seed)),
		seed:      seed,
		blockList: make(map[ld.BlockID]ld.ListID),
		target:    target,
	}
}

// genVal produces a unique, deterministic payload.
func (w *workload) genVal(size int) []byte {
	w.valSeq++
	v := make([]byte, size)
	vr := rand.New(rand.NewSource(mixSeed(w.seed, w.valSeq)))
	vr.Read(v)
	// Stamp the sequence number so even 1-byte payload collisions are
	// astronomically unlikely to alias a different version.
	for i := 0; i < len(v) && i < 8; i++ {
		v[i] = byte(w.valSeq >> (8 * i))
	}
	return v
}

// check classifies an operation error: power loss stops the run,
// anything else is a genuine failure the harness must surface.
func (w *workload) check(op string, err error) error {
	if err == nil {
		return nil
	}
	if w.r.rail.Lost() {
		return errPowerLost
	}
	return fmt.Errorf("op %d (%s): %w", w.opIndex, op, err)
}

// run executes ops operations. A nil return means either the workload
// completed or the power went out (check r.rail.Lost()); a non-nil
// return is a harness-level failure.
func (w *workload) run(ops int) error {
	for w.opIndex = 0; w.opIndex < ops; w.opIndex++ {
		if err := w.step(); err != nil {
			if errors.Is(err, errPowerLost) {
				return nil
			}
			return err
		}
		if w.target.kind == ptOp && int64(w.opIndex+1) == w.target.n {
			w.r.rail.PowerLoss(mixSeed(w.seed, w.target.n))
			return nil
		}
		if w.r.rail.Lost() {
			return nil // a schedule hook tripped inside the last op
		}
	}
	return nil
}

func (w *workload) step() error {
	// The very first ops bootstrap a list so every later op has a target.
	if len(w.lists) == 0 {
		return w.opNewList()
	}
	switch p := w.rng.Intn(100); {
	case p < 10:
		return w.opNewBlock()
	case p < 55:
		return w.opWrite()
	case p < 63:
		return w.opDelete()
	case p < 71:
		return w.opARU()
	case p < 79:
		return w.opFlush()
	case p < 85:
		return w.opFlushSync()
	case p < 90:
		return w.opClean()
	case p < 93:
		return w.opScrub()
	case p < 97:
		return w.opMove()
	default:
		return w.opNewList()
	}
}

func (w *workload) pickList() ld.ListID { return w.lists[w.rng.Intn(len(w.lists))] }

func (w *workload) opNewList() error {
	hints := ld.ListHints{Cluster: w.rng.Intn(2) == 0}
	lid, err := w.l.NewList(ld.NilList, hints)
	if err := w.check("NewList", err); err != nil {
		return err
	}
	w.lists = append(w.lists, lid)
	w.m.lists[lid] = true
	return nil
}

func (w *workload) opNewBlock() error {
	lid := w.pickList()
	bid, err := w.l.NewBlock(lid, ld.NilBlock)
	if err := w.check("NewBlock", err); err != nil {
		return err
	}
	w.blocks = append(w.blocks, bid)
	w.blockList[bid] = lid
	w.m.ack(bid, []byte{}, lid) // a fresh block reads back empty
	return nil
}

func (w *workload) opWrite() error {
	if len(w.blocks) == 0 {
		return w.opNewBlock()
	}
	bid := w.blocks[w.rng.Intn(len(w.blocks))]
	val := w.genVal(1 + w.rng.Intn(w.l.MaxBlockSize()))
	bs := w.m.state(bid)
	bs.inflight = append(bs.inflight, val)
	if err := w.check("Write", w.l.Write(bid, val)); err != nil {
		return err
	}
	bs.inflight = bs.inflight[:len(bs.inflight)-1]
	w.m.ack(bid, val, w.blockList[bid])
	return nil
}

func (w *workload) opDelete() error {
	if len(w.blocks) < 4 {
		return w.opWrite()
	}
	i := w.rng.Intn(len(w.blocks))
	bid := w.blocks[i]
	err := w.l.DeleteBlock(bid, w.blockList[bid], ld.NilBlock)
	// Acknowledged or in flight at the loss, the delete may have won
	// either way; a tombstone version makes both outcomes legal (only a
	// later Flush+Sync would pin it down, and none follows a loss).
	w.m.ack(bid, nil, w.blockList[bid])
	if err := w.check("DeleteBlock", err); err != nil {
		return err
	}
	w.blocks = append(w.blocks[:i], w.blocks[i+1:]...)
	delete(w.blockList, bid)
	return nil
}

// opARU writes 2-4 blocks inside an atomic recovery unit. Values of an
// ARU that never reached EndARU must not survive recovery (abort
// guarantee) — they stay out of the model entirely, so their appearance
// trips the ghost check. Values of an EndARU in flight at the loss may
// legally appear: they are parked as inflight.
func (w *workload) opARU() error {
	if len(w.blocks) < 4 {
		return w.opWrite()
	}
	n := 2 + w.rng.Intn(3)
	picked := make(map[ld.BlockID]bool, n)
	var bids []ld.BlockID
	for len(bids) < n {
		b := w.blocks[w.rng.Intn(len(w.blocks))]
		if !picked[b] {
			picked[b] = true
			bids = append(bids, b)
		}
	}
	vals := make([][]byte, len(bids))
	for i := range bids {
		vals[i] = w.genVal(1 + w.rng.Intn(512))
	}
	if err := w.check("BeginARU", w.l.BeginARU()); err != nil {
		return err
	}
	for i, bid := range bids {
		if err := w.check("ARU Write", w.l.Write(bid, vals[i])); err != nil {
			return err // uncommitted: vals stay ghosts
		}
	}
	for i, bid := range bids {
		bs := w.m.state(bid)
		bs.inflight = append(bs.inflight, vals[i])
	}
	if err := w.check("EndARU", w.l.EndARU()); err != nil {
		return err // EndARU in flight: vals remain (acceptable) inflight
	}
	for i, bid := range bids {
		bs := w.m.state(bid)
		bs.inflight = bs.inflight[:len(bs.inflight)-1]
		w.m.ack(bid, vals[i], w.blockList[bid])
	}
	return nil
}

func (w *workload) opFlush() error {
	return w.check("Flush", w.l.Flush(ld.FailPower))
}

// opFlushSync is the durability point: records reach the cache via
// Flush, then the platter via the device barrier. Only after both may
// the model's floor advance.
func (w *workload) opFlushSync() error {
	if err := w.check("Flush", w.l.Flush(ld.FailPower)); err != nil {
		return err
	}
	if err := w.check("Sync", w.r.sync()); err != nil {
		return err
	}
	w.m.advanceFloor()
	return nil
}

func (w *workload) opClean() error {
	_, err := w.l.Clean(1 + w.rng.Intn(2))
	return w.check("Clean", err)
}

func (w *workload) opScrub() error {
	if _, err := w.l.Scrub(); err != nil {
		return w.check("Scrub", err)
	}
	_, err := w.l.ReclaimQuarantined()
	return w.check("ReclaimQuarantined", err)
}

func (w *workload) opMove() error {
	if len(w.blocks) == 0 || len(w.lists) < 2 {
		return w.opWrite()
	}
	bid := w.blocks[w.rng.Intn(len(w.blocks))]
	src := w.blockList[bid]
	dst := w.pickList()
	if dst == src {
		return w.opFlush()
	}
	err := w.l.MoveBlocks(bid, bid, src, dst, ld.NilBlock, ld.NilBlock)
	// Record the move optimistically: membership is only enforced at the
	// durability floor, which cannot advance between a lost move and the
	// crash.
	bs := w.m.state(bid)
	if len(bs.vers) > 0 {
		w.m.ack(bid, bs.vers[len(bs.vers)-1].val, dst)
	}
	if err := w.check("MoveBlocks", err); err != nil {
		return err
	}
	w.blockList[bid] = dst
	return nil
}
