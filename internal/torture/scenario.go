package torture

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
)

// Directed scenarios: the reclaim kind (crash inside Scrub salvage and
// ReclaimQuarantined over a genuinely quarantined image) and the
// rebuild kind (crash mid mirror re-silver with concurrent writes).
// Both are built from the same primitives as the generic runPoint but
// need multi-phase setups, so they live here.

// ---------------------------------------------------------------------------
// Baseline observations.
//
// Maintenance passes (scrub salvage, reclaim) must never lose a fact
// that was observable before they started: a crash in the middle may
// leave the pass incomplete, but every block that was readable before
// must still read the same bytes after recovery, and nothing deleted
// may resurrect. The shadow model alone cannot say this — it admits any
// acknowledged version — so directed scenarios snapshot the observable
// state first and check it again after the crash.

const (
	obsVal     = iota // block read a value
	obsCorrupt        // block read ld.ErrCorrupt (degraded)
	obsAbsent         // block read ld.ErrBadBlock
)

type obs struct {
	kind int
	val  []byte
}

// observe reads every model-known block from a live instance.
func observe(l *lld.LLD, m *model) map[ld.BlockID]obs {
	out := make(map[ld.BlockID]obs, len(m.blocks))
	buf := make([]byte, l.MaxBlockSize())
	for bid := range m.blocks {
		n, err := l.Read(bid, buf)
		switch {
		case err == nil:
			out[bid] = obs{kind: obsVal, val: append([]byte(nil), buf[:n]...)}
		case errors.Is(err, ld.ErrCorrupt):
			out[bid] = obs{kind: obsCorrupt}
		default:
			out[bid] = obs{kind: obsAbsent}
		}
	}
	return out
}

// checkBaseline verifies a recovered instance against pre-crash
// observations:
//
//   - readable before → must read the identical bytes now (the
//     maintenance pass held no license to change or lose it);
//   - corrupt before → may stay corrupt, read an acknowledged value
//     (salvage completed durably), or be absent (its quarantined
//     evidence was legally superseded) — but a value matching no
//     acknowledged version is a salvage corruption;
//   - absent before → must stay absent: maintenance resurrects nothing.
func checkBaseline(l2 *lld.LLD, base map[ld.BlockID]obs, m *model) error {
	bids := make([]ld.BlockID, 0, len(base))
	for b := range base {
		bids = append(bids, b)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	buf := make([]byte, l2.MaxBlockSize())
	for _, bid := range bids {
		b := base[bid]
		n, err := l2.Read(bid, buf)
		switch b.kind {
		case obsVal:
			if err != nil {
				return fmt.Errorf("block %d: readable before the maintenance crash (%d bytes) but now %v — fact lost", bid, len(b.val), err)
			}
			if !bytes.Equal(buf[:n], b.val) {
				return fmt.Errorf("block %d: bytes changed across a maintenance crash", bid)
			}
		case obsCorrupt:
			if err == nil && !m.state(bid).acceptableValue(buf[:n]) {
				return fmt.Errorf("block %d: salvage produced %d bytes matching no acknowledged version", bid, n)
			}
		case obsAbsent:
			if err == nil {
				return fmt.Errorf("block %d: absent before the maintenance crash but resurrected with %d bytes", bid, n)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Reclaim scenario.

// reclaimFractions is the deterministic damage search: cut the power at
// these fractions of the reference sector span (crossed with a few loss
// seeds) until recovery quarantines a segment. Mid-run cuts tend to
// damage sealed segments — reordered persistence drops a sector under
// an already-persisted later one, which recovery classifies as rot, not
// a benign torn tail.
var reclaimFractions = []struct{ num, den int64 }{
	{2, 3}, {1, 2}, {3, 4}, {1, 3}, {5, 6}, {7, 12},
}

const reclaimSalts = 4

// reclaimPhaseA manufactures a quarantined image: run the seeded
// workload, cut the power mid-run, restart, recover. It returns the rig
// and recovered instance of the first attempt whose recovery reports a
// quarantined segment, with target's schedule hook installed and
// counting from zero — phase B (Scrub + ReclaimQuarantined) is the
// schedule the hook directs. A nil instance (and nil error) means no
// attempt produced quarantine.
func reclaimPhaseA(cfg Config, target point) (*rig, *model, *lld.LLD, *scheduler, error) {
	span, _, err := runReference(cfg)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	for ai := 0; ai < len(reclaimFractions)*reclaimSalts; ai++ {
		f := reclaimFractions[ai%len(reclaimFractions)]
		budget := span * f.num / f.den
		if budget <= 0 {
			continue
		}
		r, err := newRig(cfg)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		opts := tortureOptions(nil)
		if err := lld.Format(r.back, opts); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("format: %w", err)
		}
		r.rail.Arm(budget, mixSeed(cfg.Seed, 300+int64(ai)))
		m := newModel()
		l, err := lld.Open(r.back, opts)
		if err == nil {
			w := newWorkload(l, r, cfg.Seed, point{})
			if err := w.run(cfg.Ops); err != nil {
				return nil, nil, nil, nil, err
			}
			m = w.m
			if !r.rail.Lost() {
				r.rail.PowerLoss(mixSeed(cfg.Seed, 400+int64(ai)))
			}
			_ = l.Shutdown(false)
		} else if !r.rail.Lost() {
			return nil, nil, nil, nil, fmt.Errorf("phase-A open: %w", err)
		}

		r.rail.Restart()
		sched := newScheduler(r.rail, cfg.Seed, target)
		l2, err := lld.Open(r.back, tortureOptions(sched.hook))
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("phase-A recovery (attempt %d): %w", ai, err)
		}
		rep := l2.RecoveryReport()
		if err := m.verify(l2, rep); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("phase-A recovered state (attempt %d): %w", ai, err)
		}
		if len(rep.QuarantinedSegments) > 0 {
			return r, m, l2, sched, nil
		}
		_ = l2.Shutdown(false)
		r.close()
	}
	return nil, nil, nil, nil, nil
}

// reclaimPhaseB runs the maintenance pass under the armed schedule
// hook: salvage via Scrub, then ReclaimQuarantined. Power may go out at
// any hooked site; errors after the loss are expected.
func reclaimPhaseB(cfg Config, r *rig, l2 *lld.LLD) error {
	if _, err := l2.Scrub(); err != nil && !r.rail.Lost() {
		return fmt.Errorf("scrub: %w", err)
	}
	if !r.rail.Lost() {
		if _, err := l2.ReclaimQuarantined(); err != nil && !r.rail.Lost() {
			return fmt.Errorf("reclaim: %w", err)
		}
	}
	return nil
}

func enumerateReclaim(cfg Config) ([]point, error) {
	r, _, l2, sched, err := reclaimPhaseA(cfg, point{})
	if err != nil {
		return nil, err
	}
	if l2 == nil {
		cfg.Logf("torture reclaim: no power cut produced a quarantined segment at seed %d; 0 points", cfg.Seed)
		return nil, nil
	}
	defer r.close()
	if err := reclaimPhaseB(cfg, r, l2); err != nil {
		return nil, fmt.Errorf("reference %w", err)
	}
	_ = l2.Shutdown(false)
	return sitePoints(cfg, sched.snapshot()), nil
}

func runReclaimPoint(cfg Config, pt point) error {
	r, m, l2, _, err := reclaimPhaseA(cfg, pt)
	if err != nil {
		return err
	}
	if l2 == nil {
		return fmt.Errorf("torture: reclaim point %s: quarantined image no longer reproducible", pt)
	}
	defer r.close()
	base := observe(l2, m)
	if err := reclaimPhaseB(cfg, r, l2); err != nil {
		return err
	}
	if !r.rail.Lost() {
		// The target site was not reached again (a later occurrence the
		// reference pass had but this one lacks): cut at the end anyway.
		r.rail.PowerLoss(mixSeed(cfg.Seed, 9000+pt.n))
	}
	_ = l2.Shutdown(false)
	return recoverAndVerify(cfg, r, m, base)
}

// ---------------------------------------------------------------------------
// Rebuild scenario.

const rebuildStepChunks = 4

// runRebuildFlow is the shared mid-rebuild crash flow: populate a 2-way
// mirror, make everything durable, fail replica 1, attach a blank
// cached platter on the same rail, and re-silver it with modelled
// writes landing between copy steps. When pt is a rebuild point the
// power dies at progress step pt.n. Returns the interior progress-step
// count, the rig (replica 1's cache already swapped for the blank), and
// the shadow model.
func runRebuildFlow(cfg Config, pt point) (steps int, r *rig, m *model, err error) {
	r, err = newRig(cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	ok := false
	defer func() {
		if !ok {
			r.close()
		}
	}()
	opts := tortureOptions(nil)
	if err := lld.Format(r.back, opts); err != nil {
		return 0, nil, nil, fmt.Errorf("format: %w", err)
	}
	l, err := lld.Open(r.back, opts)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("open: %w", err)
	}
	w := newWorkload(l, r, cfg.Seed, point{})
	if err := w.run(cfg.Ops); err != nil {
		return 0, nil, nil, err
	}
	if r.rail.Lost() {
		return 0, nil, nil, fmt.Errorf("rebuild flow lost power during the populate workload")
	}
	m = w.m
	// Everything acknowledged so far becomes the durability floor: the
	// surviving replica holds it all, so none of it may vanish in the
	// crash — only the writes issued during the rebuild are above water.
	if err := l.Flush(ld.FailPower); err != nil {
		return 0, nil, nil, fmt.Errorf("pre-rebuild flush: %w", err)
	}
	if err := r.sync(); err != nil {
		return 0, nil, nil, fmt.Errorf("pre-rebuild sync: %w", err)
	}
	m.advanceFloor()

	r.mirror.FailReplica(1)
	blank := disk.NewWBCache(disk.New(disk.DefaultConfig(cfg.DiskBytes)), r.rail)
	if err := r.mirror.AttachBlank(1, blank); err != nil {
		return 0, nil, nil, fmt.Errorf("attach blank: %w", err)
	}
	// The old replica-1 platter is gone for good; from here on the rig's
	// second leg — including after the restart — is the replacement.
	r.caches[1] = blank

	var wErr error
	_, rerr := r.mirror.Rebuild(1, rebuildStepChunks, func(done, total int) {
		if done >= total {
			return // completion callback, not an interior pause
		}
		steps++
		if pt.kind == ptRebuild && int64(steps) == pt.n {
			r.rail.PowerLoss(mixSeed(cfg.Seed, 5000+pt.n))
			return
		}
		if r.rail.Lost() || wErr != nil {
			return
		}
		// Concurrent traffic: a modelled write every few pauses, so the
		// crash interleaves copy chunks with fresh log appends that the
		// rebuilding replica also receives.
		if steps%3 == 0 {
			if err := w.opWrite(); err != nil && !errors.Is(err, errPowerLost) {
				wErr = err
			}
		}
	})
	if wErr != nil {
		return 0, nil, nil, fmt.Errorf("mid-rebuild write: %w", wErr)
	}
	if rerr != nil && !r.rail.Lost() {
		return 0, nil, nil, fmt.Errorf("rebuild: %w", rerr)
	}
	if pt.kind == ptRebuild && !r.rail.Lost() {
		// Point beyond this run's step count: cut right after completion.
		r.rail.PowerLoss(mixSeed(cfg.Seed, 5000+pt.n))
	}
	_ = l.Shutdown(false)
	ok = true
	return steps, r, m, nil
}

func enumerateRebuild(cfg Config) ([]point, error) {
	steps, r, _, err := runRebuildFlow(cfg, point{})
	if err != nil {
		return nil, err
	}
	r.close()
	pts := make([]point, 0, steps)
	for k := 1; k <= steps; k++ {
		pts = append(pts, point{kind: ptRebuild, n: int64(k)})
	}
	return pts, nil
}

func runRebuildPoint(cfg Config, pt point) error {
	_, r, m, err := runRebuildFlow(cfg, pt)
	if err != nil {
		return err
	}
	defer r.close()

	// Restart. The operator knows replica 1 was mid-rebuild when the
	// lights went out, so it must not serve reads until re-silvered:
	// recompose, fail it back out, and rebuild it to completion before
	// recovery mounts the mirror.
	r.rail.Restart()
	if err := r.compose(true); err != nil {
		return fmt.Errorf("recompose after restart: %w", err)
	}
	r.mirror.FailReplica(1)
	if err := r.mirror.AttachBlank(1, r.caches[1]); err != nil {
		return fmt.Errorf("post-restart attach: %w", err)
	}
	if _, err := r.mirror.Rebuild(1, 0, nil); err != nil {
		return fmt.Errorf("post-restart rebuild: %w", err)
	}
	return verifyRecovered(cfg, r, m, nil)
}
