// Package torture is the deterministic power-failure torture harness.
//
// It drives a seeded workload against a Logical Disk built over
// volatile write-cache backends (disk.WBCache on a shared
// disk.PowerRail), cuts the simulated power at an enumerated crash
// point — every Nth accepted sector, every Nth workload operation, or a
// named schedule site inside a maintenance pass — restarts, runs
// recovery, and verifies the recovered state against a shadow logical
// model (model.go). Power loss persists a seeded-PRNG-chosen subset of
// the cached sectors and may tear the boundary sector, so recovery is
// exercised against reordered and torn persistence, not just in-order
// prefixes.
//
// Every failure is reported with a one-line reproducer ("seed=… kind=…
// … point=…") that Replay re-executes deterministically.
package torture

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
	"repro/internal/mdisk"
)

// Topology kinds.
const (
	KindLLD     = "lld"     // single cached disk
	KindStripe  = "stripe"  // RAID-0 over cached legs
	KindMirror  = "mirror"  // RAID-1 over cached legs
	KindReclaim = "reclaim" // quarantine image, then crash inside Scrub/ReclaimQuarantined
	KindRebuild = "rebuild" // 2-way mirror, crash mid-rebuild with concurrent writes
	KindLanes   = "lanes"   // single cached disk, Legs segment lanes (inline seals for determinism)
)

// Config parameterizes one torture run (one topology, one seed).
type Config struct {
	Kind      string // topology (Kind* constants); default KindLLD
	Legs      int    // stripe/mirror width; default 2
	Seed      int64  // master seed: workload, loss PRNG, everything
	Ops       int    // workload length; default 300
	DiskBytes int64  // per-leg platter size; default 4 MiB

	SectorStride int64 // crash point every Nth accepted sector; default 13
	OpStride     int   // crash point every Nth op; default 11 (stripe: 3)
	SiteCap      int   // max points per named schedule site; default 8
	MaxPoints    int   // cap on total points (evenly sampled); 0 = all

	Logf func(format string, args ...any) // progress/failure log; default silent
}

func (c *Config) fillDefaults() {
	if c.Kind == "" {
		c.Kind = KindLLD
	}
	if c.Legs == 0 {
		c.Legs = 2
	}
	if c.Ops == 0 {
		c.Ops = 300
	}
	if c.DiskBytes == 0 {
		c.DiskBytes = 4 << 20
	}
	if c.SectorStride == 0 {
		c.SectorStride = 13
	}
	if c.OpStride == 0 {
		if c.Kind == KindStripe {
			c.OpStride = 3
		} else {
			c.OpStride = 11
		}
	}
	if c.SiteCap == 0 {
		c.SiteCap = 8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

func (c Config) legCount() int {
	switch c.Kind {
	case KindLLD, KindReclaim, KindLanes:
		return 1
	case KindRebuild:
		return 2
	default:
		return c.Legs
	}
}

// DefaultConfigs is the standard suite: every topology at one seed.
func DefaultConfigs(seed int64) []Config {
	return []Config{
		{Kind: KindLLD, Seed: seed},
		{Kind: KindStripe, Legs: 2, Seed: seed},
		{Kind: KindMirror, Legs: 2, Seed: seed},
		{Kind: KindReclaim, Seed: seed},
		{Kind: KindRebuild, Seed: seed},
		{Kind: KindLanes, Legs: 2, Seed: seed},
	}
}

// Failure is one crash point whose recovered state failed verification.
type Failure struct {
	Repro string // replayable reproducer line
	Err   error
}

// Result summarizes one Run.
type Result struct {
	Config   Config
	Points   int            // crash points executed
	ByKind   map[string]int // points per point kind (sector/op/site/rebuild)
	Failures []Failure
}

// Crash point kinds.
const (
	ptSector  = "sector"  // power loss when the Nth post-format sector is accepted
	ptOp      = "op"      // power loss after the Nth workload operation
	ptSite    = "site"    // power loss at the Nth occurrence of a schedule site
	ptRebuild = "rebuild" // power loss at the Nth mirror-rebuild progress step
)

// Point kind labels as they appear in Result.ByKind and reproducer lines.
const (
	PointSector  = ptSector
	PointOp      = ptOp
	PointSite    = ptSite
	PointRebuild = ptRebuild
)

type point struct {
	kind string
	n    int64
	site string // ptSite only
}

func (p point) String() string {
	if p.kind == ptSite {
		return fmt.Sprintf("site:%s@%d", p.site, p.n)
	}
	return fmt.Sprintf("%s:%d", p.kind, p.n)
}

func parsePoint(s string) (point, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return point{}, fmt.Errorf("torture: bad point %q", s)
	}
	var p point
	p.kind = kind
	numPart := rest
	if kind == ptSite {
		site, occ, ok := strings.Cut(rest, "@")
		if !ok {
			return point{}, fmt.Errorf("torture: bad site point %q", s)
		}
		p.site = site
		numPart = occ
	}
	n, err := strconv.ParseInt(numPart, 10, 64)
	if err != nil || n <= 0 {
		return point{}, fmt.Errorf("torture: bad point %q", s)
	}
	p.n = n
	switch kind {
	case ptSector, ptOp, ptSite, ptRebuild:
		return p, nil
	}
	return point{}, fmt.Errorf("torture: unknown point kind %q", kind)
}

// Repro renders the one-line reproducer for a config + point.
func Repro(cfg Config, pt point) string {
	cfg.fillDefaults()
	return fmt.Sprintf("seed=%d kind=%s legs=%d ops=%d disk=%d point=%s",
		cfg.Seed, cfg.Kind, cfg.Legs, cfg.Ops, cfg.DiskBytes, pt)
}

// Replay re-executes the single crash point named by a reproducer line
// (as printed in Failure.Repro). A nil return means the recovered state
// verified clean this time.
func Replay(repro string) error {
	var cfg Config
	var pt point
	havePoint := false
	for _, tok := range strings.Fields(repro) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return fmt.Errorf("torture: bad reproducer token %q", tok)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("torture: bad seed %q", val)
			}
			cfg.Seed = n
		case "kind":
			cfg.Kind = val
		case "legs":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("torture: bad legs %q", val)
			}
			cfg.Legs = n
		case "ops":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("torture: bad ops %q", val)
			}
			cfg.Ops = n
		case "disk":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("torture: bad disk %q", val)
			}
			cfg.DiskBytes = n
		case "point":
			p, err := parsePoint(val)
			if err != nil {
				return err
			}
			pt, havePoint = p, true
		default:
			return fmt.Errorf("torture: unknown reproducer key %q", key)
		}
	}
	if !havePoint {
		return fmt.Errorf("torture: reproducer has no point=")
	}
	cfg.fillDefaults()
	return runPoint(cfg, pt)
}

// Run enumerates this config's crash points and executes every one.
// The returned error reports harness-level trouble (the reference run
// itself failing); verification failures land in Result.Failures.
func Run(cfg Config) (Result, error) {
	cfg.fillDefaults()
	pts, err := enumerate(cfg)
	if err != nil {
		return Result{}, err
	}
	res := Result{Config: cfg, ByKind: make(map[string]int)}
	for _, pt := range pts {
		res.Points++
		res.ByKind[pt.kind]++
		if err := runPoint(cfg, pt); err != nil {
			res.Failures = append(res.Failures, Failure{Repro: Repro(cfg, pt), Err: err})
			cfg.Logf("TORTURE FAIL %s: %v", Repro(cfg, pt), err)
		}
	}
	cfg.Logf("torture %s: %d points (%v), %d failures",
		cfg.Kind, res.Points, res.ByKind, len(res.Failures))
	return res, nil
}

// mixSeed derives independent per-purpose seeds from the master seed,
// mirroring disk.WBCache's per-cache derivation.
func mixSeed(seed, salt int64) int64 {
	x := uint64(seed) + 0x9E3779B97F4A7C15*uint64(salt+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// rig is the composed storage under test: cached platters on one power
// rail, assembled per the config's topology.
type rig struct {
	cfg    Config
	rail   *disk.PowerRail
	caches []*disk.WBCache
	back   disk.Backend
	mirror *mdisk.Mirror
	stripe *mdisk.Stripe
}

func newRig(cfg Config) (*rig, error) {
	r := &rig{cfg: cfg, rail: disk.NewRail()}
	for i := 0; i < cfg.legCount(); i++ {
		d := disk.New(disk.DefaultConfig(cfg.DiskBytes))
		r.caches = append(r.caches, disk.NewWBCache(d, r.rail))
	}
	return r, r.compose(false)
}

// compose (re)builds the topology over the existing caches. After a
// simulated reboot the composites are rebuilt from scratch — mirror
// replica states and stripe worker queues do not survive power loss —
// and a rebuilt mirror marks all chunks written, since its blank-disk
// bookkeeping is gone.
func (r *rig) compose(afterRestart bool) error {
	if r.stripe != nil {
		r.stripe.Close()
		r.stripe = nil
	}
	r.mirror = nil
	backends := make([]disk.Backend, len(r.caches))
	for i, c := range r.caches {
		backends[i] = c
	}
	switch r.cfg.Kind {
	case KindLLD, KindReclaim, KindLanes:
		r.back = r.caches[0]
	case KindStripe:
		s, err := mdisk.NewStripe(backends...)
		if err != nil {
			return err
		}
		r.stripe = s
		r.back = s
	case KindMirror, KindRebuild:
		m, err := mdisk.NewMirror(backends...)
		if err != nil {
			return err
		}
		if afterRestart {
			m.MarkAllWritten()
		}
		r.mirror = m
		r.back = m
	default:
		return fmt.Errorf("torture: unknown kind %q", r.cfg.Kind)
	}
	return nil
}

func (r *rig) sync() error {
	if s, ok := r.back.(disk.Syncer); ok {
		return s.Sync()
	}
	return nil
}

func (r *rig) close() {
	if r.stripe != nil {
		r.stripe.Close()
	}
}

// tortureOptions is the small-geometry option set every run uses.
// Background goroutines stay off: the workload is single-threaded so
// every run of a given (seed, point) is bit-deterministic.
func tortureOptions(hook func(string)) lld.Options {
	o := lld.DefaultOptions()
	o.SegmentSize = 32 * 1024
	o.SummarySize = 4 * 1024
	o.MaxBlockSize = 4096
	o.CompressBandwidth = 0
	o.MapShards = 1
	o.SegmentLanes = 1
	o.CrashHook = hook
	return o
}

// options is tortureOptions specialized to the config: the lanes
// topology spreads the single-threaded workload over Legs lanes (one
// map stripe each) with inline seals, so every lane interleaving —
// including the multi-dirty-lane and inline group-commit crash sites —
// stays bit-deterministic.
func (c Config) options(hook func(string)) lld.Options {
	o := tortureOptions(hook)
	if c.Kind == KindLanes {
		o.MapShards = c.Legs
		o.SegmentLanes = c.Legs
		o.SyncLaneSeals = true
	}
	return o
}

// scheduler counts schedule-site occurrences and trips the rail when
// the target occurrence of the target site is reached.
type scheduler struct {
	mu     sync.Mutex
	counts map[string]int
	rail   *disk.PowerRail
	seed   int64
	target point
}

func newScheduler(rail *disk.PowerRail, seed int64, target point) *scheduler {
	return &scheduler{counts: make(map[string]int), rail: rail, seed: seed, target: target}
}

func (s *scheduler) hook(site string) {
	s.mu.Lock()
	s.counts[site]++
	c := int64(s.counts[site])
	s.mu.Unlock()
	if s.target.kind == ptSite && s.target.site == site && c == s.target.n {
		s.rail.PowerLoss(mixSeed(s.seed, 7000+c))
	}
}

func (s *scheduler) snapshot() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// runReference executes the workload with no crash and reports the
// sector span consumed after format and the schedule-site occurrence
// counts — the coordinate space the crash points are drawn from.
func runReference(cfg Config) (span int64, sites map[string]int, err error) {
	r, err := newRig(cfg)
	if err != nil {
		return 0, nil, err
	}
	defer r.close()
	sched := newScheduler(r.rail, cfg.Seed, point{})
	opts := cfg.options(sched.hook)
	if err := lld.Format(r.back, opts); err != nil {
		return 0, nil, fmt.Errorf("reference format: %w", err)
	}
	base := r.rail.Accepted()
	if r.mirror != nil {
		r.mirror.SetCrashHook(sched.hook)
	}
	l, err := lld.Open(r.back, opts)
	if err != nil {
		return 0, nil, fmt.Errorf("reference open: %w", err)
	}
	w := newWorkload(l, r, cfg.Seed, point{})
	if err := w.run(cfg.Ops); err != nil {
		return 0, nil, fmt.Errorf("reference workload: %w", err)
	}
	if r.rail.Lost() {
		return 0, nil, fmt.Errorf("reference run lost power with no injection")
	}
	if err := l.Shutdown(false); err != nil {
		return 0, nil, fmt.Errorf("reference shutdown: %w", err)
	}
	return r.rail.Accepted() - base, sched.snapshot(), nil
}

// enumerate builds the ordered crash-point list for a config.
func enumerate(cfg Config) ([]point, error) {
	cfg.fillDefaults()
	var pts []point
	switch cfg.Kind {
	case KindReclaim:
		var err error
		pts, err = enumerateReclaim(cfg)
		if err != nil {
			return nil, err
		}
	case KindRebuild:
		var err error
		pts, err = enumerateRebuild(cfg)
		if err != nil {
			return nil, err
		}
	default:
		span, sites, err := runReference(cfg)
		if err != nil {
			return nil, err
		}
		// Sector-granular points need a deterministic accepted-sector
		// order; the stripe's parallel leg workers race on the rail, so
		// stripes use (denser) op-granular points instead.
		if cfg.Kind != KindStripe {
			for s := cfg.SectorStride; s <= span; s += cfg.SectorStride {
				pts = append(pts, point{kind: ptSector, n: s})
			}
		}
		for k := cfg.OpStride; k < cfg.Ops; k += cfg.OpStride {
			pts = append(pts, point{kind: ptOp, n: int64(k)})
		}
		pts = append(pts, sitePoints(cfg, sites)...)
	}
	if cfg.MaxPoints > 0 && len(pts) > cfg.MaxPoints {
		sampled := make([]point, 0, cfg.MaxPoints)
		for i := 0; i < cfg.MaxPoints; i++ {
			sampled = append(sampled, pts[i*len(pts)/cfg.MaxPoints])
		}
		pts = sampled
	}
	return pts, nil
}

// sitePoints expands observed site occurrence counts into points, in
// sorted site order for determinism.
func sitePoints(cfg Config, sites map[string]int) []point {
	names := make([]string, 0, len(sites))
	for s := range sites {
		names = append(names, s)
	}
	sort.Strings(names)
	var pts []point
	for _, s := range names {
		n := sites[s]
		if n > cfg.SiteCap {
			n = cfg.SiteCap
		}
		for j := 1; j <= n; j++ {
			pts = append(pts, point{kind: ptSite, n: int64(j), site: s})
		}
	}
	return pts
}

// runPoint executes one crash point end to end: build, crash, restart,
// recover, verify. A nil return means the recovered state was legal.
func runPoint(cfg Config, pt point) error {
	cfg.fillDefaults()
	switch cfg.Kind {
	case KindReclaim:
		return runReclaimPoint(cfg, pt)
	case KindRebuild:
		return runRebuildPoint(cfg, pt)
	}
	r, err := newRig(cfg)
	if err != nil {
		return err
	}
	defer r.close()
	sched := newScheduler(r.rail, cfg.Seed, pt)
	opts := cfg.options(sched.hook)
	if err := lld.Format(r.back, opts); err != nil {
		return fmt.Errorf("format: %w", err)
	}
	if err := r.sync(); err != nil {
		return fmt.Errorf("post-format sync: %w", err)
	}
	if r.mirror != nil {
		r.mirror.SetCrashHook(sched.hook)
	}
	if pt.kind == ptSector {
		r.rail.Arm(pt.n, mixSeed(cfg.Seed, pt.n))
	}
	m := newModel()
	l, err := lld.Open(r.back, opts)
	if err != nil {
		if !r.rail.Lost() {
			return fmt.Errorf("open: %w", err)
		}
		// Power died during the initial open: recovery starts from an
		// empty (but formatted) store.
	} else {
		w := newWorkload(l, r, cfg.Seed, pt)
		if err := w.run(cfg.Ops); err != nil {
			return err
		}
		m = w.m
		if !r.rail.Lost() {
			// The workload outran the point (a sector budget larger than
			// this run consumed, which cannot happen for enumerated
			// points, or a site occurrence that never recurred): cut now.
			r.rail.PowerLoss(mixSeed(cfg.Seed, int64(cfg.Ops)+1))
		}
		_ = l.Shutdown(false)
	}
	return recoverAndVerify(cfg, r, m, nil)
}

// recoverAndVerify restarts the rig, reopens (running recovery), and
// checks the recovered state: shadow model, instance invariants, and —
// on an undegraded image — the offline fsck.
func recoverAndVerify(cfg Config, r *rig, m *model, base map[ld.BlockID]obs) error {
	r.rail.Restart()
	if err := r.compose(true); err != nil {
		return fmt.Errorf("recompose after restart: %w", err)
	}
	return verifyRecovered(cfg, r, m, base)
}

// verifyRecovered runs recovery on the already-recomposed rig and
// checks the result.
func verifyRecovered(cfg Config, r *rig, m *model, base map[ld.BlockID]obs) error {
	opts := cfg.options(nil)
	l2, err := lld.Open(r.back, opts)
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	rep := l2.RecoveryReport()
	if err := m.verify(l2, rep); err != nil {
		return err
	}
	if base != nil {
		if err := checkBaseline(l2, base, m); err != nil {
			return err
		}
	}
	if err := l2.Shutdown(true); err != nil {
		return fmt.Errorf("clean shutdown after recovery: %w", err)
	}
	if !rep.Degraded() {
		var detail strings.Builder
		faults, err := lld.Verify(r.back, &detail)
		if err != nil {
			return fmt.Errorf("offline verify: %w", err)
		}
		if faults > 0 {
			return fmt.Errorf("offline verify found %d faults on an undegraded image:\n%s",
				faults, detail.String())
		}
	}
	return nil
}
