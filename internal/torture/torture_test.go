package torture

import (
	"os"
	"strings"
	"testing"
)

// Bounded smoke per topology: every enumerated (sampled) crash point
// must recover to a state the shadow model accepts. The full-breadth
// runs live in ldtest (TestTorture*); these keep `go test ./...` honest.

func smokeConfig(t *testing.T, kind string, maxPoints int) Config {
	return Config{
		Kind:      kind,
		Legs:      2,
		Seed:      1,
		Ops:       160,
		MaxPoints: maxPoints,
		Logf:      t.Logf,
	}
}

func runSmoke(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("torture run: %v", err)
	}
	for _, f := range res.Failures {
		t.Errorf("crash point failed verification:\n  %s\n  %v", f.Repro, f.Err)
	}
	return res
}

func TestTortureLLDSmoke(t *testing.T) {
	res := runSmoke(t, smokeConfig(t, KindLLD, 12))
	if res.Points == 0 {
		t.Fatal("no crash points enumerated")
	}
}

func TestTortureStripeSmoke(t *testing.T) {
	res := runSmoke(t, smokeConfig(t, KindStripe, 10))
	if res.Points == 0 {
		t.Fatal("no crash points enumerated")
	}
}

func TestTortureMirrorSmoke(t *testing.T) {
	res := runSmoke(t, smokeConfig(t, KindMirror, 10))
	if res.Points == 0 {
		t.Fatal("no crash points enumerated")
	}
}

func TestTortureReclaimSmoke(t *testing.T) {
	// Reclaim needs the damage search to actually quarantine a segment;
	// an unlucky seed yields zero points, so walk a fixed seed list until
	// one bites. All tried seeds must still verify cleanly.
	for _, seed := range []int64{1, 2, 3, 5, 8} {
		cfg := smokeConfig(t, KindReclaim, 8)
		cfg.Seed = seed
		res := runSmoke(t, cfg)
		if res.Points > 0 {
			if res.ByKind[ptSite] == 0 {
				t.Error("reclaim points enumerated but none site-granular")
			}
			return
		}
	}
	t.Error("no seed in the list produced a quarantined image to reclaim")
}

func TestTortureLanesSmoke(t *testing.T) {
	res := runSmoke(t, smokeConfig(t, KindLanes, 10))
	if res.Points == 0 {
		t.Fatal("no crash points enumerated")
	}
	// The lane sites must actually occur in the reference run: a cut
	// while two or more lanes hold unsealed records is the whole point
	// of this topology.
	cfg := smokeConfig(t, KindLanes, 0)
	cfg.fillDefaults()
	_, sites, err := runReference(cfg)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if sites["lane.multidirty"] == 0 {
		t.Error("workload never had two dirty lanes at once")
	}
}

func TestTortureRebuildSmoke(t *testing.T) {
	res := runSmoke(t, smokeConfig(t, KindRebuild, 8))
	if res.Points == 0 {
		t.Fatal("no rebuild crash points enumerated")
	}
	if res.ByKind[ptRebuild] != res.Points {
		t.Errorf("rebuild enumerated non-rebuild points: %v", res.ByKind)
	}
}

// TestReproRoundTrip checks that a reproducer line replays: same seed,
// same point, same verdict (clean here, since the smoke suite is clean).
func TestReproRoundTrip(t *testing.T) {
	cfg := smokeConfig(t, KindLLD, 0)
	pts, err := enumerate(cfg)
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	pt := pts[len(pts)/2]
	repro := Repro(cfg, pt)
	for i := 0; i < 2; i++ {
		if err := Replay(repro); err != nil {
			t.Fatalf("replay %d of %q: %v", i, repro, err)
		}
	}
	if err := Replay("seed=1 point=bogus:3"); err == nil {
		t.Error("bogus reproducer accepted")
	}
	if err := Replay("seed=1 kind=lld"); err == nil || !strings.Contains(err.Error(), "no point") {
		t.Errorf("pointless reproducer: got %v", err)
	}
}

// TestReplayEnv replays the reproducer line in TORTURE_REPRO, for
// debugging failures reported by CI or the long-run sweeps:
//
//	TORTURE_REPRO='seed=42 kind=lld legs=2 ops=300 disk=4194304 point=sector:1326' \
//	  go test ./internal/torture -run TestReplayEnv -v
func TestReplayEnv(t *testing.T) {
	repro := os.Getenv("TORTURE_REPRO")
	if repro == "" {
		t.Skip("set TORTURE_REPRO to a reproducer line")
	}
	if err := Replay(repro); err != nil {
		t.Fatalf("replay %q: %v", repro, err)
	}
}

// TestPointParse covers the point grammar both ways.
func TestPointParse(t *testing.T) {
	cases := []point{
		{kind: ptSector, n: 13},
		{kind: ptOp, n: 7},
		{kind: ptSite, n: 2, site: "reclaim.midclear"},
		{kind: ptRebuild, n: 4},
	}
	for _, want := range cases {
		got, err := parsePoint(want.String())
		if err != nil {
			t.Fatalf("parsePoint(%q): %v", want.String(), err)
		}
		if got != want {
			t.Errorf("parsePoint(%q) = %+v, want %+v", want.String(), got, want)
		}
	}
	for _, bad := range []string{"", "sector", "sector:0", "sector:-3", "site:noocc", "warp:9"} {
		if _, err := parsePoint(bad); err == nil {
			t.Errorf("parsePoint(%q) accepted", bad)
		}
	}
}

// TestEnumerationBreadth asserts the acceptance floor: at default
// workload length the lld + stripe + mirror configs together enumerate
// well over 500 distinct crash points (before MaxPoints sampling).
func TestEnumerationBreadth(t *testing.T) {
	if testing.Short() {
		t.Skip("reference runs are not instant")
	}
	total := 0
	for _, kind := range []string{KindLLD, KindStripe, KindMirror} {
		cfg := Config{Kind: kind, Legs: 2, Seed: 7, Logf: t.Logf}
		cfg.fillDefaults()
		pts, err := enumerate(cfg)
		if err != nil {
			t.Fatalf("enumerate %s: %v", kind, err)
		}
		t.Logf("%s: %d points", kind, len(pts))
		total += len(pts)
	}
	if total < 500 {
		t.Errorf("lld+stripe+mirror enumerate %d crash points, want >= 500", total)
	}
}
