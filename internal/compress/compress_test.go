package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	c := Compress(nil, src)
	out, err := Decompress(nil, c, -1)
	if err != nil {
		t.Fatalf("decompress: %v (input len %d)", err, len(src))
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("round trip mismatch: in %d bytes, out %d bytes", len(src), len(out))
	}
	return c
}

func TestRoundTripEmpty(t *testing.T) {
	c := roundTrip(t, nil)
	if len(c) == 0 {
		t.Fatal("empty input should still produce a terminating token")
	}
}

func TestRoundTripShort(t *testing.T) {
	for i := 0; i < 8; i++ {
		roundTrip(t, []byte("abcdefgh")[:i])
	}
}

func TestRoundTripRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte("abcd"), 1024)
	c := roundTrip(t, src)
	if len(c) >= len(src)/4 {
		t.Fatalf("highly repetitive input compressed poorly: %d -> %d", len(src), len(c))
	}
}

func TestRoundTripText(t *testing.T) {
	src := []byte(strings.Repeat("the logical disk separates file management from disk management. ", 200))
	c := roundTrip(t, src)
	if Ratio(len(src), len(c)) > 0.5 {
		t.Fatalf("text ratio %.2f, expected < 0.5", Ratio(len(src), len(c)))
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := make([]byte, 64*1024)
	rng.Read(src)
	c := roundTrip(t, src)
	// Random data should expand only slightly.
	if len(c) > len(src)+len(src)/16+16 {
		t.Fatalf("random data expanded too much: %d -> %d", len(src), len(c))
	}
}

func TestRoundTripOverlappingMatches(t *testing.T) {
	// RLE-like data exercises overlapping copies (offset < length).
	roundTrip(t, bytes.Repeat([]byte{0xAB}, 10000))
	roundTrip(t, bytes.Repeat([]byte{1, 2}, 5000))
	roundTrip(t, bytes.Repeat([]byte{1, 2, 3}, 3333))
}

func TestRoundTripLongLiteralRuns(t *testing.T) {
	// > 15 literals forces the extended literal length path.
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 1000)
	rng.Read(src)
	roundTrip(t, src)
}

func TestRoundTripLongMatches(t *testing.T) {
	// Matches longer than 15+minMatch force extended match lengths.
	src := append([]byte("prefix-material-"), bytes.Repeat([]byte{'x'}, 5000)...)
	roundTrip(t, src)
}

func TestDecompressCorrupt(t *testing.T) {
	cases := [][]byte{
		{0xF0},            // extended literal length, then nothing
		{0x10},            // 1 literal promised, none present
		{0x01, 'a'},       // match promised, no offset
		{0x01, 'a', 0, 0}, // zero offset
		{0x01, 'a', 9, 0}, // offset beyond output
		{0x0F, 'a', 1, 0}, // extended match length, truncated
	}
	for i, c := range cases {
		if _, err := Decompress(nil, c, -1); err == nil {
			t.Errorf("case %d: corrupt stream accepted", i)
		}
	}
}

func TestDecompressMaxSize(t *testing.T) {
	src := bytes.Repeat([]byte("abcd"), 1024)
	c := Compress(nil, src)
	if _, err := Decompress(nil, c, len(src)); err != nil {
		t.Fatalf("exact maxSize rejected: %v", err)
	}
	if _, err := Decompress(nil, c, len(src)-1); err == nil {
		t.Fatal("undersized maxSize accepted")
	}
}

func TestDecompressAppendsToDst(t *testing.T) {
	prefix := []byte("prefix")
	src := []byte("hello hello hello hello hello")
	c := Compress(nil, src)
	out, err := Decompress(append([]byte(nil), prefix...), c, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:len(prefix)], prefix) {
		t.Fatal("prefix clobbered")
	}
	if !bytes.Equal(out[len(prefix):], src) {
		t.Fatal("appended output wrong")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		c := Compress(nil, data)
		out, err := Decompress(nil, c, -1)
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: structured inputs (slices of small runs) also round trip; this
// generator produces more matches than uniform random bytes.
func TestQuickRoundTripStructured(t *testing.T) {
	f := func(runs []uint8, alphabet uint8) bool {
		var src []byte
		a := int(alphabet)%7 + 1
		for i, r := range runs {
			b := byte(i % a)
			src = append(src, bytes.Repeat([]byte{b}, int(r)%67)...)
		}
		c := Compress(nil, src)
		out, err := Decompress(nil, c, -1)
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticDataTargetsRatio(t *testing.T) {
	for _, target := range []float64{0.4, 0.6, 0.8} {
		data := SyntheticData(256*1024, target, 1)
		if len(data) != 256*1024 {
			t.Fatalf("wrong length %d", len(data))
		}
		c := Compress(nil, data)
		r := Ratio(len(data), len(c))
		if r < target-0.15 || r > target+0.15 {
			t.Errorf("target %.2f: achieved %.2f", target, r)
		}
		roundTrip(t, data)
	}
}

func TestSyntheticDataDeterministic(t *testing.T) {
	a := SyntheticData(4096, 0.6, 99)
	b := SyntheticData(4096, 0.6, 99)
	if !bytes.Equal(a, b) {
		t.Fatal("SyntheticData not deterministic for equal seeds")
	}
}

func TestSyntheticDataIncompressible(t *testing.T) {
	data := SyntheticData(4096, 1.0, 5)
	c := Compress(nil, data)
	if Ratio(len(data), len(c)) < 0.95 {
		t.Fatalf("ratio-1.0 data compressed to %.2f", Ratio(len(data), len(c)))
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0, 10) != 1 {
		t.Fatal("zero-length original should report ratio 1")
	}
	if Ratio(100, 60) != 0.6 {
		t.Fatalf("Ratio(100,60)=%v", Ratio(100, 60))
	}
}

func BenchmarkCompress4K(b *testing.B) {
	data := SyntheticData(4096, 0.6, 3)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Compress(nil, data)
	}
}

func BenchmarkDecompress4K(b *testing.B) {
	data := SyntheticData(4096, 0.6, 3)
	c := Compress(nil, data)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(nil, c, -1); err != nil {
			b.Fatal(err)
		}
	}
}
