// Package compress implements the byte-oriented compression LLD uses for
// lists created with the Compress hint (paper §3.3). The paper used an
// algorithm due to Wheeler chosen "for its simplicity and performance" and
// reports a compression ratio of about 60% on file system data; this
// package provides an LZ77-style compressor with the same character: a
// single-pass greedy matcher over a hash table, fast enough that (as the
// paper assumes) compression bandwidth, not algorithmic complexity, is the
// knob that matters. The benchmark harness models compression bandwidth
// separately; this package provides the actual bytes-in/bytes-out
// transform so compressed images on the simulated disk are real.
//
// Format: a sequence of tokens. Each token is
//
//	tag byte: high nibble = literal count (15 = extended),
//	          low nibble  = match length - 4 (15 = extended)
//	[extended literal count bytes: 255-valued continuations]
//	literal bytes
//	[2-byte little-endian match offset (1-based, back from current pos)]
//	[extended match length bytes]
//
// The stream ends immediately after the literals of the final token (no
// offset follows). A match length nibble is meaningful only when an offset
// follows.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is returned when a compressed stream is malformed.
var ErrCorrupt = errors.New("compress: corrupt input")

const (
	minMatch  = 4
	hashBits  = 13
	hashSize  = 1 << hashBits
	maxOffset = 1 << 16
)

func hash4(u uint32) uint32 {
	return (u * 2654435761) >> (32 - hashBits)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// Compress appends the compressed form of src to dst and returns the
// result. Compress never fails; callers that require the output to be
// smaller than the input (as LLD does) must compare lengths and fall back
// to storing the data raw.
func Compress(dst, src []byte) []byte {
	var table [hashSize]int32
	for i := range table {
		table[i] = -1
	}

	n := len(src)
	litStart := 0
	i := 0
	for i+minMatch <= n {
		h := hash4(load32(src, i))
		cand := int(table[h])
		table[h] = int32(i)
		if cand >= 0 && i-cand < maxOffset && load32(src, cand) == load32(src, i) {
			// Extend the match.
			mlen := minMatch
			for i+mlen < n && src[cand+mlen] == src[i+mlen] {
				mlen++
			}
			dst = emitToken(dst, src[litStart:i], i-cand, mlen)
			// Insert a few positions inside the match to keep the table
			// warm without paying for every byte.
			end := i + mlen
			for j := i + 1; j < end && j+minMatch <= n; j += 2 {
				table[hash4(load32(src, j))] = int32(j)
			}
			i = end
			litStart = i
			continue
		}
		i++
	}
	if litStart < n || n == 0 {
		dst = emitToken(dst, src[litStart:], 0, 0)
	}
	return dst
}

// emitToken appends one token: the literals, then (if mlen >= minMatch) the
// match descriptor.
func emitToken(dst, lits []byte, offset, mlen int) []byte {
	litLen := len(lits)
	tag := byte(0)
	if litLen < 15 {
		tag = byte(litLen) << 4
	} else {
		tag = 15 << 4
	}
	hasMatch := mlen >= minMatch
	if hasMatch {
		m := mlen - minMatch
		if m < 15 {
			tag |= byte(m)
		} else {
			tag |= 15
		}
	}
	dst = append(dst, tag)
	if litLen >= 15 {
		dst = appendExtended(dst, litLen-15)
	}
	dst = append(dst, lits...)
	if hasMatch {
		var off [2]byte
		binary.LittleEndian.PutUint16(off[:], uint16(offset))
		dst = append(dst, off[0], off[1])
		if mlen-minMatch >= 15 {
			dst = appendExtended(dst, mlen-minMatch-15)
		}
	}
	return dst
}

func appendExtended(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// Decompress appends the decompressed form of src to dst and returns the
// result. maxSize bounds the output to guard against corrupt streams; pass
// a negative value for no bound.
func Decompress(dst, src []byte, maxSize int) ([]byte, error) {
	base := len(dst)
	i := 0
	n := len(src)
	for i < n {
		tag := src[i]
		i++
		litLen := int(tag >> 4)
		if litLen == 15 {
			ext, ni, err := readExtended(src, i)
			if err != nil {
				return nil, err
			}
			litLen += ext
			i = ni
		}
		if i+litLen > n {
			return nil, fmt.Errorf("%w: literal run past end", ErrCorrupt)
		}
		dst = append(dst, src[i:i+litLen]...)
		i += litLen
		if maxSize >= 0 && len(dst)-base > maxSize {
			return nil, fmt.Errorf("%w: output exceeds %d bytes", ErrCorrupt, maxSize)
		}
		if i == n {
			break // final token carries no match
		}
		if i+2 > n {
			return nil, fmt.Errorf("%w: truncated match offset", ErrCorrupt)
		}
		offset := int(binary.LittleEndian.Uint16(src[i:]))
		i += 2
		mlen := int(tag&15) + minMatch
		if tag&15 == 15 {
			ext, ni, err := readExtended(src, i)
			if err != nil {
				return nil, err
			}
			mlen += ext
			i = ni
		}
		if offset == 0 || offset > len(dst)-base {
			return nil, fmt.Errorf("%w: bad match offset %d", ErrCorrupt, offset)
		}
		if maxSize >= 0 && len(dst)-base+mlen > maxSize {
			return nil, fmt.Errorf("%w: output exceeds %d bytes", ErrCorrupt, maxSize)
		}
		// Byte-at-a-time copy: matches may overlap their own output.
		pos := len(dst) - offset
		for k := 0; k < mlen; k++ {
			dst = append(dst, dst[pos+k])
		}
	}
	return dst, nil
}

func readExtended(src []byte, i int) (int, int, error) {
	v := 0
	for {
		if i >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated extended length", ErrCorrupt)
		}
		b := src[i]
		i++
		v += int(b)
		if b != 255 {
			return v, i, nil
		}
	}
}

// Ratio returns compressedLen / originalLen; by the paper's convention a
// "compression ratio of 60%" means the output is 60% of the input size.
func Ratio(originalLen, compressedLen int) float64 {
	if originalLen == 0 {
		return 1
	}
	return float64(compressedLen) / float64(originalLen)
}
