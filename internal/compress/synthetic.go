package compress

import "math/rand"

// SyntheticData returns n bytes whose compressibility under this package's
// compressor approximates targetRatio (output/input, per the paper's 60%
// convention). It mixes incompressible random bytes with long runs drawn
// from a tiny alphabet; the mix fraction is chosen by a short calibration
// search. The generator is deterministic for a given seed.
func SyntheticData(n int, targetRatio float64, seed int64) []byte {
	if n <= 0 {
		return nil
	}
	if targetRatio >= 1 {
		out := make([]byte, n)
		rand.New(rand.NewSource(seed)).Read(out)
		return out
	}
	if targetRatio < 0.05 {
		targetRatio = 0.05
	}
	// Binary-search the fraction of compressible content.
	lo, hi := 0.0, 1.0
	var best []byte
	for iter := 0; iter < 8; iter++ {
		frac := (lo + hi) / 2
		data := mixData(n, frac, seed)
		c := Compress(nil, data)
		r := Ratio(n, len(c))
		best = data
		if r > targetRatio {
			// Not compressible enough: raise the compressible fraction.
			lo = frac
		} else {
			hi = frac
		}
		if diff := r - targetRatio; diff < 0.02 && diff > -0.02 {
			break
		}
	}
	return best
}

// mixData builds n bytes where frac of the content is redundant (repeated
// phrases) and the rest is random.
func mixData(n int, frac float64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n)
	phrase := []byte("the quick brown fox jumps over the lazy dog 0123456789 ")
	for len(out) < n {
		if rng.Float64() < frac {
			// A run of repeated phrase material.
			runLen := 32 + rng.Intn(96)
			for i := 0; i < runLen && len(out) < n; i++ {
				out = append(out, phrase[i%len(phrase)])
			}
		} else {
			runLen := 16 + rng.Intn(48)
			for i := 0; i < runLen && len(out) < n; i++ {
				out = append(out, byte(rng.Intn(256)))
			}
		}
	}
	return out[:n]
}
