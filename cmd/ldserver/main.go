// Command ldserver serves a Logical Disk over TCP using the netld
// protocol. The backing store is a log-structured LLD on the simulated
// disk, either fresh in memory or loaded from an image created with mkld;
// with -img the image is written back on clean shutdown.
//
// Usage:
//
//	ldserver -addr :7093                          # fresh 64M in-memory LLD
//	ldserver -addr :7093 -img disk.img            # serve an existing image
//	ldserver -addr :7093 -size 256M -segment 512K # fresh, custom geometry
//	ldserver -addr :7093 -mirror 2 -img disk.img  # serve disk.img.0, disk.img.1
//	ldserver -addr :7093 -stripe 4                # fresh LLD over a 4-leg stripe
//
// With -mirror N the backing store is an N-way mirror (internal/mdisk):
// reads are checksum-verified against any replica and silently healed,
// writes fan out to all. Image sets use mkld's <img>.0 … <img>.N-1
// naming. A replica image missing at startup starts the server degraded
// — the slot gets a blank disk and is re-silvered online while clients
// are being served, with progress logged. With -stripe N sectors are
// round-robined over N legs for parallel transfer.
//
// If a client disconnects with an atomic recovery unit open, the server
// aborts the unit by crash-style recovery (paper §3.3): the log is
// flushed, the in-memory state discarded, and the disk reopened; the
// one-sweep recovery drops the unfinished unit. Ctrl-C shuts down
// gracefully: in-flight requests drain, the LLD checkpoints, and the
// image (if any) is saved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
	"repro/internal/mdisk"
	"repro/internal/netld/server"
)

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldserver: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":7093", "TCP listen address")
	img := flag.String("img", "", "disk image to serve (created if missing); saved on clean shutdown")
	size := flag.String("size", "64M", "capacity for a fresh disk (K/M/G suffixes)")
	segment := flag.String("segment", "512K", "LLD segment size for a fresh format")
	recoveryWorkers := flag.Int("recovery-workers", 0,
		"goroutines for the one-sweep startup recovery (0 = min(GOMAXPROCS, 8), 1 = sequential)")
	mapShards := flag.Int("map-shards", 0,
		"lock stripes over the block map and free-id pools (0 = min(GOMAXPROCS, 64), 1 = single lock)")
	segmentLanes := flag.Int("segment-lanes", 0,
		"concurrently filling open segments, sealed through an async group-commit pipeline (0 = min(map shards, 4), 1 = single segment with inline seals)")
	bgClean := flag.Bool("bg-clean", false,
		"run segment cleaning in a background goroutine with bounded per-step lock holds")
	cleanStep := flag.Int("clean-step", 1,
		"victim segments the background cleaner processes per lock acquisition (with -bg-clean)")
	bgScrub := flag.Bool("bg-scrub", false,
		"verify block payload checksums against the media in a background goroutine")
	scrubStep := flag.Int("scrub-step", 1,
		"segments the background scrubber verifies per lock acquisition (with -bg-scrub)")
	mirrorN := flag.Int("mirror", 0,
		"serve from an N-way mirror; with -img the replicas are <img>.0 … <img>.N-1")
	stripeN := flag.Int("stripe", 0,
		"serve from an N-leg stripe; with -img the legs are <img>.0 … <img>.N-1")
	rebuildStep := flag.Int("rebuild-step", 8,
		"chunks the online rebuild of a missing mirror replica copies per lock acquisition")
	idleTimeout := flag.Duration("idle-timeout", 0,
		"disconnect a client that sends no request for this long (0 = never); an ARU left open by an idled-out client is aborted")
	quiet := flag.Bool("q", false, "suppress per-event logging")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ldserver [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, `
Concurrency: each client connection is served by its own goroutine, and
read-only commands (READ, LISTBLOCKS, ...) execute concurrently inside the
backing LLD under a shared lock; mutating commands are exclusive. There is
no worker-pool knob for request handling — concurrency equals the number
of connected clients with in-flight requests. -recovery-workers controls
only the parallel summary sweep during startup recovery of a crashed image.
-map-shards stripes the block-number map and free-id pools so mutating
commands on blocks in different stripes run their compression and
checksumming concurrently; 1 restores the single-lock write path.
-segment-lanes keeps that many open segments filling at once, one per
group of map stripes, and seals full ones through an asynchronous
group-commit pipeline so a seal's media write no longer stalls writers;
1 restores the single open segment with inline seals.

With -bg-clean, segment cleaning runs in a goroutine owned by the LLD
instead of inline on the write path: a write that trips the cleaning
watermark signals the goroutine and continues, and the goroutine holds the
exclusive lock for at most -clean-step victim segments at a time, so the
worst-case pause a request sees is one bounded step rather than a whole
multi-segment pass. Writes block only when the free-segment pool is truly
exhausted.

With -bg-scrub, an online scrubber re-reads sealed segments (woken by each
segment seal) and verifies every live block's payload checksum against the
media, holding the exclusive lock for at most -scrub-step segments at a
time. Latent corruption is then found proactively instead of at the next
unlucky READ; either way damaged data is refused with a CORRUPT status,
never served.

With -mirror, every sector lives on N replicas: writes fan out to all of
them, reads are served by any and re-checked against the LLD's per-block
checksums, so a replica that rots or dies is read around (and healed by
rewrite) without the client seeing an error. A replica image file that
is missing at startup is hot-attached blank and re-silvered online in
-rebuild-step chunk batches while the server runs. With -stripe, sectors
round-robin over N legs, each with its own request queue, for parallel
transfer. On shutdown each backing disk is saved to its own <img>.i.

On graceful shutdown (SIGINT/SIGTERM) the server drains in-flight
requests, checkpoints the LLD, and prints a per-opcode latency table
(count, errors, approximate p50/p99 from a log2 histogram).
`)
	}
	flag.Parse()

	capacity, err := parseSize(*size)
	if err != nil {
		fail("bad size: %v", err)
	}
	segSize, err := parseSize(*segment)
	if err != nil {
		fail("bad segment size: %v", err)
	}

	opts := lld.DefaultOptions()
	opts.SegmentSize = int(segSize)
	opts.RecoveryWorkers = *recoveryWorkers
	opts.MapShards = *mapShards
	opts.SegmentLanes = *segmentLanes
	opts.BackgroundClean = *bgClean
	opts.CleanStepSegments = *cleanStep
	opts.BackgroundScrub = *bgScrub
	opts.ScrubStepSegments = *scrubStep

	bk, err := setupBackend(*img, capacity, *mirrorN, *stripeN)
	if err != nil {
		fail("%v", err)
	}
	if bk.needFormat {
		if err := lld.Format(bk.be, opts); err != nil {
			fail("format: %v", err)
		}
	}
	l, err := lld.Open(bk.be, opts)
	if err != nil {
		fail("open LLD: %v", err)
	}
	if rep := l.RecoveryReport(); rep.Degraded() {
		fmt.Fprintf(os.Stderr,
			"ldserver: WARNING: recovery found damage: %d segments quarantined, %d blocks degraded\n",
			len(rep.QuarantinedSegments), len(rep.DegradedBlocks))
		for _, q := range rep.QuarantinedSegments {
			fmt.Fprintf(os.Stderr, "ldserver:   segment %d: %s\n", q.Seg, q.Reason)
		}
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	srv := server.New(server.Config{
		Disk:        l,
		Reopen:      func() (ld.Disk, error) { return lld.Open(bk.be, opts) },
		Logf:        logf,
		IdleTimeout: *idleTimeout,
	})

	// Missing mirror replicas re-silver online while clients are served;
	// the bounded lock steps keep request pauses short.
	var rebuildWG sync.WaitGroup
	for _, idx := range bk.rebuilding {
		rebuildWG.Add(1)
		go func(idx int) {
			defer rebuildWG.Done()
			lastDecile := -1
			rep, err := bk.mirror.Rebuild(idx, *rebuildStep, func(done, total int) {
				if d := done * 10 / total; d != lastDecile {
					lastDecile = d
					logf("ldserver: rebuild replica %d: %d%% (%d/%d chunks)", idx, d*10, done, total)
				}
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ldserver: rebuild replica %d FAILED: %v\n", idx, err)
				return
			}
			fmt.Fprintf(os.Stderr, "ldserver: rebuild replica %d complete: %d chunks (%d MB) copied in %d steps, %s virtual\n",
				idx, rep.Chunks, rep.Bytes>>20, rep.Steps, rep.Elapsed)
		}(idx)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ldserver: serving %s (%d MB, %d segments) on %s\n",
		bk.describe(*img), bk.be.Capacity()>>20, l.SegmentCount(), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "ldserver: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(ln); err != nil {
		fail("serve: %v", err)
	}

	// Graceful exit: wait out any in-flight rebuild, checkpoint the LLD
	// (the instance may have been swapped by an ARU abort, so fetch the
	// current one) and save the image(s) if asked to.
	rebuildWG.Wait()
	cur := srv.Disk()
	if err := cur.Shutdown(true); err != nil {
		fail("clean shutdown: %v", err)
	}
	if *img != "" {
		if err := bk.save(*img); err != nil {
			fail("save image: %v", err)
		}
		if len(bk.kids) == 1 {
			fmt.Fprintf(os.Stderr, "ldserver: image saved to %s\n", *img)
		} else {
			fmt.Fprintf(os.Stderr, "ldserver: images saved to %s.0 … %s.%d\n", *img, *img, len(bk.kids)-1)
		}
	}
	if ll, ok := cur.(*lld.LLD); ok {
		s := ll.Stats()
		fmt.Fprintf(os.Stderr,
			"ldserver: cleaner: %d runs, %d segments cleaned, %d moved blocks; background: %d passes, %d steps, %d errors, %d writer waits\n",
			s.CleanerRuns, s.SegmentsCleaned, s.BlocksMoved,
			s.BGCleanPasses, s.BGCleanSteps, s.BGCleanErrors, s.WriterWaits)
		fmt.Fprintf(os.Stderr,
			"ldserver: integrity: %d corrupt reads refused, %d transient retries, %d quarantined segments; scrub: %d passes, %d blocks (%d MB) verified, %d errors, %d repairs\n",
			s.CorruptReads, s.ReadRetries, s.QuarantinedSegments,
			s.ScrubPasses+s.BGScrubPasses, s.ScrubBlocks, s.ScrubBytes>>20,
			s.ScrubErrors, s.ScrubRepairs)
		if bk.mirror != nil || bk.stripe != nil {
			fmt.Fprintf(os.Stderr,
				"ldserver: redundancy: %d degraded reads, %d copies self-healed, %d healed by scrub, %d segments reclaimed\n",
				s.DegradedReads, s.SelfHeals, s.ScrubHeals, s.ReclaimedSegments)
		}
	}
	if bk.mirror != nil {
		ms := bk.mirror.Stats()
		fmt.Fprintf(os.Stderr,
			"ldserver: mirror: %d reads (%d degraded), %d writes, %d copies healed, %d verify rejects, %d replica failures, %d rebuilds\n",
			ms.Reads, ms.DegradedReads, ms.Writes, ms.Heals, ms.VerifyRejects, ms.ReplicaFailures, ms.RebuildsDone)
	}
	if bk.stripe != nil {
		ss := bk.stripe.Stats()
		fmt.Fprintf(os.Stderr,
			"ldserver: stripe: %d reads + %d writes fanned into %d leg ops over %d legs (%d found a busy queue)\n",
			ss.Reads, ss.Writes, ss.LegOps, bk.stripe.Backends(), ss.LegQueue)
		bk.stripe.Close()
	}
	printStats(srv.Stats(), *quiet)
}

// backendSet is the sector store ldserver serves from plus the handles
// needed for persistence, shutdown stats, and online rebuild.
type backendSet struct {
	be         disk.Backend
	kids       []*disk.Disk // the physical disks, for image save
	mirror     *mdisk.Mirror
	stripe     *mdisk.Stripe
	rebuilding []int // mirror slots that started blank and need a rebuild
	needFormat bool
}

// setupBackend builds the backing store: a single simulated disk, an
// N-way mirror, or an N-leg stripe, loading image files when they
// exist. Multi-disk sets use mkld's <img>.0 … <img>.N-1 naming. A
// mirror replica image missing at startup is replaced by a blank disk
// marked rebuilding (reported in rebuilding); a missing stripe leg is
// fatal, since its sectors exist nowhere else.
func setupBackend(img string, capacity int64, mirrorN, stripeN int) (*backendSet, error) {
	if mirrorN > 0 && stripeN > 0 {
		return nil, fmt.Errorf("-mirror and -stripe are mutually exclusive")
	}

	load := func(path string) (*disk.Disk, error) {
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		d := disk.New(disk.DefaultConfig(info.Size()))
		if err := d.LoadImage(path); err != nil {
			return nil, err
		}
		return d, nil
	}

	if mirrorN == 0 && stripeN == 0 {
		bk := &backendSet{needFormat: true}
		if img != "" {
			if _, err := os.Stat(img); err == nil {
				d, err := load(img)
				if err != nil {
					return nil, fmt.Errorf("load image: %w", err)
				}
				bk.kids, bk.be, bk.needFormat = []*disk.Disk{d}, d, false
				return bk, nil
			}
		}
		d := disk.New(disk.DefaultConfig(capacity))
		bk.kids, bk.be = []*disk.Disk{d}, d
		return bk, nil
	}

	n := mirrorN + stripeN // exactly one is nonzero
	kids := make([]*disk.Disk, n)
	var present []int
	if img != "" {
		for i := range kids {
			if _, err := os.Stat(fmt.Sprintf("%s.%d", img, i)); err == nil {
				present = append(present, i)
			}
		}
	}

	bk := &backendSet{kids: kids}
	switch {
	case stripeN > 0:
		if len(present) == 0 { // fresh: each leg carries 1/N of the capacity
			per := capacity / int64(n)
			for i := range kids {
				kids[i] = disk.New(disk.DefaultConfig(per))
			}
			bk.needFormat = true
		} else if len(present) < n {
			return nil, fmt.Errorf("stripe image set incomplete: %d of %d legs found (a stripe cannot run degraded)", len(present), n)
		} else {
			for i := range kids {
				d, err := load(fmt.Sprintf("%s.%d", img, i))
				if err != nil {
					return nil, fmt.Errorf("load leg %d: %w", i, err)
				}
				kids[i] = d
			}
		}
		s, err := mdisk.NewStripe(diskBackends(kids)...)
		if err != nil {
			return nil, err
		}
		bk.be, bk.stripe = s, s
		return bk, nil

	default: // mirrorN > 0
		if len(present) == 0 { // fresh: every replica carries the full capacity
			for i := range kids {
				kids[i] = disk.New(disk.DefaultConfig(capacity))
			}
			bk.needFormat = true
		} else {
			repCap := int64(0)
			for _, i := range present {
				d, err := load(fmt.Sprintf("%s.%d", img, i))
				if err != nil {
					return nil, fmt.Errorf("load replica %d: %w", i, err)
				}
				kids[i] = d
				if repCap == 0 {
					repCap = d.Capacity()
				}
			}
			for i := range kids {
				if kids[i] == nil {
					kids[i] = disk.New(disk.DefaultConfig(repCap))
					bk.rebuilding = append(bk.rebuilding, i)
				}
			}
		}
		m, err := mdisk.NewMirror(diskBackends(kids)...)
		if err != nil {
			return nil, err
		}
		if !bk.needFormat {
			// The image bytes never passed through this mirror's write
			// path, so the written bitmap is blank; a rebuild must copy
			// the whole capacity, not skip "unwritten" chunks.
			m.MarkAllWritten()
		}
		for _, i := range bk.rebuilding {
			m.FailReplica(i)
			if err := m.AttachBlank(i, kids[i]); err != nil {
				return nil, fmt.Errorf("attach blank replica %d: %w", i, err)
			}
		}
		bk.be, bk.mirror = m, m
		return bk, nil
	}
}

// save writes each backing disk to its image file.
func (bk *backendSet) save(img string) error {
	if len(bk.kids) == 1 && bk.mirror == nil && bk.stripe == nil {
		return bk.kids[0].SaveImage(img)
	}
	for i, k := range bk.kids {
		if err := k.SaveImage(fmt.Sprintf("%s.%d", img, i)); err != nil {
			return err
		}
	}
	return nil
}

func (bk *backendSet) describe(img string) string {
	suffix := ""
	switch {
	case bk.mirror != nil:
		suffix = fmt.Sprintf(" (%d-way mirror)", len(bk.kids))
	case bk.stripe != nil:
		suffix = fmt.Sprintf(" (%d-leg stripe)", len(bk.kids))
	}
	if img == "" {
		return "in-memory LLD" + suffix
	}
	return "LLD image " + img + suffix
}

func diskBackends(kids []*disk.Disk) []disk.Backend {
	out := make([]disk.Backend, len(kids))
	for i, k := range kids {
		out[i] = k
	}
	return out
}

// printStats renders the shutdown report: a one-line summary, the
// per-opcode latency table, and (unless quiet) the full JSON snapshot.
func printStats(st server.Stats, quiet bool) {
	var total, errs uint64
	names := make([]string, 0, len(st.Ops))
	for name, op := range st.Ops {
		if op.Count == 0 {
			continue
		}
		total += op.Count
		errs += op.Errors
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr,
		"ldserver: served %d requests (%d errors) over %d sessions; %d ARU aborts, %d proto errors\n",
		total, errs, st.SessionsOpened, st.ARUAborts, st.ProtoErrors)
	if len(names) > 0 {
		// A quantile landing in the histogram's overflow bucket is a floor,
		// not an exact bound; mark it "≥" rather than passing it off.
		q := func(op server.OpStats, p float64) string {
			d, over := op.QuantileBound(p)
			if over {
				return "≥" + d.String()
			}
			return d.String()
		}
		fmt.Fprintf(os.Stderr, "%-14s %10s %8s %10s %10s\n", "op", "count", "errors", "p50", "p99")
		for _, name := range names {
			op := st.Ops[name]
			fmt.Fprintf(os.Stderr, "%-14s %10d %8d %10s %10s\n",
				name, op.Count, op.Errors, q(op, 0.50), q(op, 0.99))
		}
	}
	if !quiet {
		js, _ := json.MarshalIndent(st, "", "  ")
		fmt.Fprintf(os.Stderr, "ldserver: final stats:\n%s\n", js)
	}
}
