// Command ldserver serves a Logical Disk over TCP using the netld
// protocol. The backing store is a log-structured LLD on the simulated
// disk, either fresh in memory or loaded from an image created with mkld;
// with -img the image is written back on clean shutdown.
//
// Usage:
//
//	ldserver -addr :7093                          # fresh 64M in-memory LLD
//	ldserver -addr :7093 -img disk.img            # serve an existing image
//	ldserver -addr :7093 -size 256M -segment 512K # fresh, custom geometry
//
// If a client disconnects with an atomic recovery unit open, the server
// aborts the unit by crash-style recovery (paper §3.3): the log is
// flushed, the in-memory state discarded, and the disk reopened; the
// one-sweep recovery drops the unfinished unit. Ctrl-C shuts down
// gracefully: in-flight requests drain, the LLD checkpoints, and the
// image (if any) is saved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
	"repro/internal/netld/server"
)

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldserver: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":7093", "TCP listen address")
	img := flag.String("img", "", "disk image to serve (created if missing); saved on clean shutdown")
	size := flag.String("size", "64M", "capacity for a fresh disk (K/M/G suffixes)")
	segment := flag.String("segment", "512K", "LLD segment size for a fresh format")
	recoveryWorkers := flag.Int("recovery-workers", 0,
		"goroutines for the one-sweep startup recovery (0 = min(GOMAXPROCS, 8), 1 = sequential)")
	bgClean := flag.Bool("bg-clean", false,
		"run segment cleaning in a background goroutine with bounded per-step lock holds")
	cleanStep := flag.Int("clean-step", 1,
		"victim segments the background cleaner processes per lock acquisition (with -bg-clean)")
	bgScrub := flag.Bool("bg-scrub", false,
		"verify block payload checksums against the media in a background goroutine")
	scrubStep := flag.Int("scrub-step", 1,
		"segments the background scrubber verifies per lock acquisition (with -bg-scrub)")
	quiet := flag.Bool("q", false, "suppress per-event logging")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ldserver [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, `
Concurrency: each client connection is served by its own goroutine, and
read-only commands (READ, LISTBLOCKS, ...) execute concurrently inside the
backing LLD under a shared lock; mutating commands are exclusive. There is
no worker-pool knob for request handling — concurrency equals the number
of connected clients with in-flight requests. -recovery-workers controls
only the parallel summary sweep during startup recovery of a crashed image.

With -bg-clean, segment cleaning runs in a goroutine owned by the LLD
instead of inline on the write path: a write that trips the cleaning
watermark signals the goroutine and continues, and the goroutine holds the
exclusive lock for at most -clean-step victim segments at a time, so the
worst-case pause a request sees is one bounded step rather than a whole
multi-segment pass. Writes block only when the free-segment pool is truly
exhausted.

With -bg-scrub, an online scrubber re-reads sealed segments (woken by each
segment seal) and verifies every live block's payload checksum against the
media, holding the exclusive lock for at most -scrub-step segments at a
time. Latent corruption is then found proactively instead of at the next
unlucky READ; either way damaged data is refused with a CORRUPT status,
never served.

On graceful shutdown (SIGINT/SIGTERM) the server drains in-flight
requests, checkpoints the LLD, and prints a per-opcode latency table
(count, errors, approximate p50/p99 from a log2 histogram).
`)
	}
	flag.Parse()

	capacity, err := parseSize(*size)
	if err != nil {
		fail("bad size: %v", err)
	}
	segSize, err := parseSize(*segment)
	if err != nil {
		fail("bad segment size: %v", err)
	}

	opts := lld.DefaultOptions()
	opts.SegmentSize = int(segSize)
	opts.RecoveryWorkers = *recoveryWorkers
	opts.BackgroundClean = *bgClean
	opts.CleanStepSegments = *cleanStep
	opts.BackgroundScrub = *bgScrub
	opts.ScrubStepSegments = *scrubStep

	var d *disk.Disk
	needFormat := true
	if *img != "" {
		if info, err := os.Stat(*img); err == nil {
			d = disk.New(disk.DefaultConfig(info.Size()))
			if err := d.LoadImage(*img); err != nil {
				fail("load image: %v", err)
			}
			needFormat = false
		}
	}
	if d == nil {
		d = disk.New(disk.DefaultConfig(capacity))
	}
	if needFormat {
		if err := lld.Format(d, opts); err != nil {
			fail("format: %v", err)
		}
	}
	l, err := lld.Open(d, opts)
	if err != nil {
		fail("open LLD: %v", err)
	}
	if rep := l.RecoveryReport(); rep.Degraded() {
		fmt.Fprintf(os.Stderr,
			"ldserver: WARNING: recovery found damage: %d segments quarantined, %d blocks degraded\n",
			len(rep.QuarantinedSegments), len(rep.DegradedBlocks))
		for _, q := range rep.QuarantinedSegments {
			fmt.Fprintf(os.Stderr, "ldserver:   segment %d: %s\n", q.Seg, q.Reason)
		}
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	srv := server.New(server.Config{
		Disk:   l,
		Reopen: func() (ld.Disk, error) { return lld.Open(d, opts) },
		Logf:   logf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ldserver: serving %s (%d MB, %d segments) on %s\n",
		describe(*img), d.Capacity()>>20, l.SegmentCount(), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "ldserver: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(ln); err != nil {
		fail("serve: %v", err)
	}

	// Graceful exit: checkpoint the LLD (the instance may have been
	// swapped by an ARU abort, so fetch the current one) and save the
	// image if asked to.
	cur := srv.Disk()
	if err := cur.Shutdown(true); err != nil {
		fail("clean shutdown: %v", err)
	}
	if *img != "" {
		if err := d.SaveImage(*img); err != nil {
			fail("save image: %v", err)
		}
		fmt.Fprintf(os.Stderr, "ldserver: image saved to %s\n", *img)
	}
	if ll, ok := cur.(*lld.LLD); ok {
		s := ll.Stats()
		fmt.Fprintf(os.Stderr,
			"ldserver: cleaner: %d runs, %d segments cleaned, %d moved blocks; background: %d passes, %d steps, %d errors, %d writer waits\n",
			s.CleanerRuns, s.SegmentsCleaned, s.BlocksMoved,
			s.BGCleanPasses, s.BGCleanSteps, s.BGCleanErrors, s.WriterWaits)
		fmt.Fprintf(os.Stderr,
			"ldserver: integrity: %d corrupt reads refused, %d transient retries, %d quarantined segments; scrub: %d passes, %d blocks (%d MB) verified, %d errors, %d repairs\n",
			s.CorruptReads, s.ReadRetries, s.QuarantinedSegments,
			s.ScrubPasses+s.BGScrubPasses, s.ScrubBlocks, s.ScrubBytes>>20,
			s.ScrubErrors, s.ScrubRepairs)
	}
	printStats(srv.Stats(), *quiet)
}

// printStats renders the shutdown report: a one-line summary, the
// per-opcode latency table, and (unless quiet) the full JSON snapshot.
func printStats(st server.Stats, quiet bool) {
	var total, errs uint64
	names := make([]string, 0, len(st.Ops))
	for name, op := range st.Ops {
		if op.Count == 0 {
			continue
		}
		total += op.Count
		errs += op.Errors
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr,
		"ldserver: served %d requests (%d errors) over %d sessions; %d ARU aborts, %d proto errors\n",
		total, errs, st.SessionsOpened, st.ARUAborts, st.ProtoErrors)
	if len(names) > 0 {
		// A quantile landing in the histogram's overflow bucket is a floor,
		// not an exact bound; mark it "≥" rather than passing it off.
		q := func(op server.OpStats, p float64) string {
			d, over := op.QuantileBound(p)
			if over {
				return "≥" + d.String()
			}
			return d.String()
		}
		fmt.Fprintf(os.Stderr, "%-14s %10s %8s %10s %10s\n", "op", "count", "errors", "p50", "p99")
		for _, name := range names {
			op := st.Ops[name]
			fmt.Fprintf(os.Stderr, "%-14s %10d %8d %10s %10s\n",
				name, op.Count, op.Errors, q(op, 0.50), q(op, 0.99))
		}
	}
	if !quiet {
		js, _ := json.MarshalIndent(st, "", "  ")
		fmt.Fprintf(os.Stderr, "ldserver: final stats:\n%s\n", js)
	}
}

func describe(img string) string {
	if img == "" {
		return "in-memory LLD"
	}
	return "LLD image " + img
}
