// Command ldserver serves a Logical Disk over TCP using the netld
// protocol. The backing store is a log-structured LLD on the simulated
// disk, either fresh in memory or loaded from an image created with mkld;
// with -img the image is written back on clean shutdown.
//
// Usage:
//
//	ldserver -addr :7093                          # fresh 64M in-memory LLD
//	ldserver -addr :7093 -img disk.img            # serve an existing image
//	ldserver -addr :7093 -size 256M -segment 512K # fresh, custom geometry
//
// If a client disconnects with an atomic recovery unit open, the server
// aborts the unit by crash-style recovery (paper §3.3): the log is
// flushed, the in-memory state discarded, and the disk reopened; the
// one-sweep recovery drops the unfinished unit. Ctrl-C shuts down
// gracefully: in-flight requests drain, the LLD checkpoints, and the
// image (if any) is saved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/disk"
	"repro/internal/ld"
	"repro/internal/lld"
	"repro/internal/netld/server"
)

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldserver: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":7093", "TCP listen address")
	img := flag.String("img", "", "disk image to serve (created if missing); saved on clean shutdown")
	size := flag.String("size", "64M", "capacity for a fresh disk (K/M/G suffixes)")
	segment := flag.String("segment", "512K", "LLD segment size for a fresh format")
	quiet := flag.Bool("q", false, "suppress per-event logging")
	flag.Parse()

	capacity, err := parseSize(*size)
	if err != nil {
		fail("bad size: %v", err)
	}
	segSize, err := parseSize(*segment)
	if err != nil {
		fail("bad segment size: %v", err)
	}

	opts := lld.DefaultOptions()
	opts.SegmentSize = int(segSize)

	var d *disk.Disk
	needFormat := true
	if *img != "" {
		if info, err := os.Stat(*img); err == nil {
			d = disk.New(disk.DefaultConfig(info.Size()))
			if err := d.LoadImage(*img); err != nil {
				fail("load image: %v", err)
			}
			needFormat = false
		}
	}
	if d == nil {
		d = disk.New(disk.DefaultConfig(capacity))
	}
	if needFormat {
		if err := lld.Format(d, opts); err != nil {
			fail("format: %v", err)
		}
	}
	l, err := lld.Open(d, opts)
	if err != nil {
		fail("open LLD: %v", err)
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	srv := server.New(server.Config{
		Disk:   l,
		Reopen: func() (ld.Disk, error) { return lld.Open(d, opts) },
		Logf:   logf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ldserver: serving %s (%d MB, %d segments) on %s\n",
		describe(*img), d.Capacity()>>20, l.SegmentCount(), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "ldserver: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(ln); err != nil {
		fail("serve: %v", err)
	}

	// Graceful exit: checkpoint the LLD (the instance may have been
	// swapped by an ARU abort, so fetch the current one) and save the
	// image if asked to.
	cur := srv.Disk()
	if err := cur.Shutdown(true); err != nil {
		fail("clean shutdown: %v", err)
	}
	if *img != "" {
		if err := d.SaveImage(*img); err != nil {
			fail("save image: %v", err)
		}
		fmt.Fprintf(os.Stderr, "ldserver: image saved to %s\n", *img)
	}
	if !*quiet {
		stats, _ := json.MarshalIndent(srv.Stats(), "", "  ")
		fmt.Fprintf(os.Stderr, "ldserver: final stats:\n%s\n", stats)
	}
}

func describe(img string) string {
	if img == "" {
		return "in-memory LLD"
	}
	return "LLD image " + img
}
