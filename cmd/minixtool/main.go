// Command minixtool operates on MINIX LLD disk images: list directories,
// import and export files, remove them, and show file system statistics.
//
// Usage:
//
//	minixtool disk.img ls /
//	minixtool disk.img put local.txt /remote.txt
//	minixtool disk.img cat /remote.txt
//	minixtool disk.img rm /remote.txt
//	minixtool disk.img mkdir /dir
//
// The image must have been created with `mkld -fs`. Changes are flushed
// through the Logical Disk and the image is rewritten in place.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/disk"
	"repro/internal/lld"
	"repro/internal/minixfs"
)

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "minixtool: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: minixtool <image> ls|cat|put|rm|mkdir|fsck|stat [args...]")
		os.Exit(2)
	}
	path, cmd := os.Args[1], os.Args[2]
	args := os.Args[3:]

	info, err := os.Stat(path)
	if err != nil {
		fatal("%v", err)
	}
	d := disk.New(disk.DefaultConfig(info.Size()))
	if err := d.LoadImage(path); err != nil {
		fatal("%v", err)
	}
	l, err := lld.Open(d, lld.DefaultOptions())
	if err != nil {
		fatal("open LD: %v", err)
	}
	be, err := minixfs.OpenLD(l, 4096, minixfs.LDConfig{PerFileLists: true})
	if err != nil {
		fatal("open backend: %v", err)
	}
	fs, err := minixfs.Open(be, 0)
	if err != nil {
		fatal("open fs: %v", err)
	}

	dirty := false
	switch cmd {
	case "ls":
		dir := "/"
		if len(args) > 0 {
			dir = args[0]
		}
		infos, err := fs.ReadDir(dir)
		if err != nil {
			fatal("ls %s: %v", dir, err)
		}
		sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
		for _, fi := range infos {
			kind := "-"
			if fi.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %8d  ino %-5d %s\n", kind, fi.Size, fi.Inode, fi.Name)
		}
	case "cat":
		if len(args) != 1 {
			fatal("cat needs a path")
		}
		f, err := fs.Open(args[0])
		if err != nil {
			fatal("cat %s: %v", args[0], err)
		}
		buf := make([]byte, f.Size())
		if _, err := f.ReadAt(buf, 0); err != nil {
			fatal("read: %v", err)
		}
		if _, err := io.Copy(os.Stdout, bytesReader(buf)); err != nil {
			fatal("write: %v", err)
		}
		f.Close()
	case "put":
		if len(args) != 2 {
			fatal("put needs <local> <remote>")
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			fatal("%v", err)
		}
		f, err := fs.Create(args[1])
		if err != nil {
			fatal("create %s: %v", args[1], err)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			fatal("write: %v", err)
		}
		f.Close()
		dirty = true
	case "rm":
		if len(args) != 1 {
			fatal("rm needs a path")
		}
		if err := fs.Unlink(args[0]); err != nil {
			fatal("rm %s: %v", args[0], err)
		}
		dirty = true
	case "mkdir":
		if len(args) != 1 {
			fatal("mkdir needs a path")
		}
		if err := fs.Mkdir(args[0]); err != nil {
			fatal("mkdir %s: %v", args[0], err)
		}
		dirty = true
	case "fsck":
		problems, err := fs.Check()
		if err != nil {
			fatal("fsck: %v", err)
		}
		if len(problems) == 0 {
			fmt.Println("clean: no inconsistencies found")
		} else {
			for _, p := range problems {
				fmt.Println("problem:", p)
			}
			os.Exit(1)
		}
	case "stat":
		st := l.Stats()
		fmt.Printf("segments: %d total, %d free; live bytes %d\n",
			l.SegmentCount(), l.FreeSegments(), l.LiveBytes())
		fmt.Printf("lld: %d blocks written, %d sealed segments, %d partial writes, %d cleaned\n",
			st.BlocksWritten, st.SegmentsSealed, st.PartialWrites, st.SegmentsCleaned)
	default:
		fatal("unknown command %q", cmd)
	}

	if dirty {
		if err := fs.Close(); err != nil {
			fatal("close: %v", err)
		}
		if err := l.Shutdown(true); err != nil {
			fatal("shutdown: %v", err)
		}
		if err := d.SaveImage(path); err != nil {
			fatal("save: %v", err)
		}
	}
}

type sliceReader struct {
	b []byte
	i int
}

func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
