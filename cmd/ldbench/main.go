// Command ldbench reproduces every table and in-text experiment from the
// evaluation of "The Logical Disk" (SOSP 1993) on the simulated disk.
//
// Usage:
//
//	ldbench -list             # show available experiments
//	ldbench table4 table5     # run specific experiments
//	ldbench all               # run everything
//	ldbench -scale 1 all      # full paper-sized workloads (slower)
//
// Results are printed as paper-style tables; throughput numbers come from
// the simulated disk's virtual clock.
//
// The LD-level microbenchmarks (small-file create/read/delete, large-file
// write) also run over the netld wire against a live ldserver, or against
// an equivalent in-process LLD for comparison; these report wall time,
// since the point is to measure what the network adds:
//
//	ldbench -remote localhost:7093   # microbenchmarks against ldserver
//	ldbench -micro                   # same suite, in-process LLD
//
// The multi-client throughput suite runs read-heavy, mixed, and write-heavy
// randomized workloads at several client counts, in-process or against a
// live server (one connection per client):
//
//	ldbench -conc                          # concurrent suite, in-process LLD
//	ldbench -conc -clients 1,4,16          # choose the client counts
//	ldbench -conc -remote localhost:7093   # same suite over netld
//
// The batched-read benchmark scans a working set per-block and then
// through one OpReadMulti batch per sweep, in-process or against a live
// server; on a latency-bearing link the batch amortizes the per-block
// round trips:
//
//	ldbench -batchbench                          # in-process LLD
//	ldbench -batchbench -remote localhost:7093   # over netld
//	ldbench -batchbench -batch-blocks 256        # bigger working set
//
// The cleaner-stall benchmark runs the same write-heavy workload on a
// space-tight in-process LLD twice — once with inline cleaning on the
// write path, once with the background cleaner goroutine — and reports
// the per-write stall quantiles side by side:
//
//	ldbench -cleanbench
//
// The scrubber-stall benchmark runs the same workload with and without the
// background scrubber verifying checksums behind the writers, showing what
// continuous integrity checking costs the foreground:
//
//	ldbench -scrubbench
//
// The shard benchmark measures all-write throughput across the block-map
// stripe count (lld.Options.MapShards) at several client counts, showing
// how far independent writes scale once the map and free-id pools stop
// sharing one lock:
//
//	ldbench -shardbench
//	ldbench -shardbench -shard-ops 500   # smaller cells
//
// The lane benchmark measures all-write throughput across the open-segment
// lane count (lld.Options.SegmentLanes) at several client counts, over a
// backend whose media writes cost real wall time: one lane pays every
// segment seal inline under the instance lock, while several lanes overlap
// seal writes through the async group-commit pipeline:
//
//	ldbench -lanebench
//	ldbench -lanebench -lane-clients 1,16 -lane-ops 500
//
// The multi-disk suite measures sequential throughput on the virtual
// clock over striped and mirrored backends (internal/mdisk): stripe
// read/write scaling across leg counts, and mirror write fan-out and
// degraded-read cost across replica counts:
//
//	ldbench -stripe            # stripe scaling sweep (1, 2, 4, 8 legs)
//	ldbench -mirror            # mirror overhead sweep (1, 2, 3 replicas)
//	ldbench -stripe -mirror    # both
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/disk"
	"repro/internal/harness"
	"repro/internal/ld"
	"repro/internal/ldmicro"
	"repro/internal/lld"
	"repro/internal/netld/client"
)

// runMicro executes the LD-level microbenchmark suite against d.
func runMicro(d ld.Disk, label string, files int) error {
	fmt.Printf("# LD microbenchmarks (%s) — wall time, %d small files\n", label, files)
	results, err := ldmicro.Run(d, ldmicro.Config{SmallFiles: files})
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Println(r)
	}
	return nil
}

// localMicroDisk builds the in-process LLD that mirrors ldserver's
// default backing store.
func localMicroDisk() (ld.Disk, error) {
	d := disk.New(disk.DefaultConfig(64 << 20))
	o := lld.DefaultOptions()
	if err := lld.Format(d, o); err != nil {
		return nil, err
	}
	return lld.Open(d, o)
}

// stallDisk builds the space-tight LLD for the cleaner-stall benchmark:
// 4 MB of disk with 128 KiB segments, so the workload's working set
// occupies most of it and rewrites keep cycling the free-segment pool
// through the cleaning watermarks.
func stallDisk(background bool) (ld.Disk, error) {
	return stallDiskScrub(background, false)
}

// stallDiskScrub is stallDisk with an optional background scrubber, used
// by the scrubber-overhead benchmark.
func stallDiskScrub(background, scrub bool) (ld.Disk, error) {
	d := disk.New(disk.DefaultConfig(4 << 20))
	o := lld.DefaultOptions()
	o.SegmentSize = 128 * 1024
	o.SummarySize = 4 * 1024
	o.CompressBandwidth = 0
	if background {
		o.BackgroundClean = true
		o.CleanStepSegments = 1
	}
	if scrub {
		o.BackgroundScrub = true
		o.ScrubStepSegments = 1
	}
	if err := lld.Format(d, o); err != nil {
		return nil, err
	}
	return lld.Open(d, o)
}

// runCleanBench runs the write-stall workload twice — inline cleaning,
// then the background cleaner — and prints the quantiles side by side.
func runCleanBench(clients, ops int) error {
	fmt.Printf("# LD cleaner stalls — per-write latency on a space-tight disk, %d clients × %d rewrites\n", clients, ops)
	cfg := ldmicro.StallConfig{Clients: clients, OpsPerClient: ops}
	var results []ldmicro.StallResult
	for _, mode := range []struct {
		name       string
		background bool
	}{{"inline cleaning", false}, {"background cleaner", true}} {
		l, err := stallDisk(mode.background)
		if err != nil {
			return err
		}
		r, err := ldmicro.RunWriteStall(mode.name, ldmicro.SingleHandle(l), cfg)
		if err != nil {
			l.Shutdown(true)
			return err
		}
		if err := l.Shutdown(true); err != nil {
			return err
		}
		fmt.Println(r)
		results = append(results, r)
	}
	if s, b := results[0], results[1]; b.P99 > 0 {
		fmt.Printf("p99 writer stall: %s inline vs %s background (%.2fx)\n",
			s.P99.Round(time.Microsecond), b.P99.Round(time.Microsecond),
			float64(s.P99)/float64(b.P99))
	}
	return nil
}

// runScrubBench runs the write-stall workload twice — without and with the
// background scrubber re-verifying every sealed segment behind the writers —
// and prints the quantiles side by side. Both runs use the background
// cleaner so the only variable is the scrubber's lock traffic.
func runScrubBench(clients, ops int) error {
	fmt.Printf("# LD scrubber overhead — per-write latency with checksum scrubbing behind the writers, %d clients × %d rewrites\n", clients, ops)
	cfg := ldmicro.StallConfig{Clients: clients, OpsPerClient: ops}
	var results []ldmicro.StallResult
	for _, mode := range []struct {
		name  string
		scrub bool
	}{{"no scrubber", false}, {"background scrubber", true}} {
		l, err := stallDiskScrub(true, mode.scrub)
		if err != nil {
			return err
		}
		r, err := ldmicro.RunWriteStall(mode.name, ldmicro.SingleHandle(l), cfg)
		if err != nil {
			l.Shutdown(true)
			return err
		}
		if err := l.Shutdown(true); err != nil {
			return err
		}
		if ll, ok := l.(*lld.LLD); ok && mode.scrub {
			s := ll.Stats()
			fmt.Printf("scrubber: %d passes, %d segments, %d blocks (%d KB) verified, %d errors\n",
				s.BGScrubPasses, s.ScrubSegments, s.ScrubBlocks, s.ScrubBytes>>10, s.ScrubErrors)
		}
		fmt.Println(r)
		results = append(results, r)
	}
	if base, scrub := results[0], results[1]; base.P99 > 0 {
		fmt.Printf("p99 writer stall: %s without vs %s with scrubbing (%.2fx)\n",
			base.P99.Round(time.Microsecond), scrub.P99.Round(time.Microsecond),
			float64(scrub.P99)/float64(base.P99))
	}
	return nil
}

// runMultiDisk runs the requested striped/mirrored throughput sweeps
// and prints one line per phase plus the stripe scaling factors.
func runMultiDisk(stripe, mirror bool, ioBytes int64) error {
	cfg := ldmicro.MultiDiskConfig{IOBytes: ioBytes}
	if !stripe {
		cfg.StripeCounts = []int{} // non-nil empty: skip the mode
	}
	if !mirror {
		cfg.MirrorCounts = []int{}
	}
	fmt.Printf("# multi-disk throughput (virtual clock) — %d KB per phase, sequential\n", ioBytes>>10)
	results, err := ldmicro.RunMultiDisk(cfg)
	if err != nil {
		return err
	}
	base := make(map[string]float64) // mode+op of the smallest count
	for _, r := range results {
		line := r.String()
		key := r.Mode + r.Op
		if _, ok := base[key]; !ok {
			base[key] = r.MBPerSec()
		} else if b := base[key]; b > 0 && r.Backends > 1 {
			line += fmt.Sprintf("  (%.2fx vs 1)", r.MBPerSec()/b)
		}
		fmt.Println(line)
	}
	return nil
}

// runBatchBench scans the same working set per-block and batched and
// prints both rates plus the round-trip amortization factor.
func runBatchBench(open ldmicro.OpenFunc, label string, blocks, rounds int) error {
	fmt.Printf("# LD batched reads (%s) — wall time, %d blocks x %d sweeps\n", label, blocks, rounds)
	per, batched, err := ldmicro.RunBatchReadComparison(label, open, ldmicro.BatchReadConfig{
		Blocks: blocks,
		Rounds: rounds,
	})
	if err != nil {
		return err
	}
	fmt.Println(per)
	fmt.Println(batched)
	if pb := per.BlocksPerSec(); pb > 0 {
		fmt.Printf("batched speedup: %.2fx\n", batched.BlocksPerSec()/pb)
	}
	return nil
}

// parseClients parses a comma-separated client-count list like "1,4,16".
func parseClients(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runConcurrent executes the multi-client throughput suite against open.
func runConcurrent(open ldmicro.OpenFunc, label string, clients []int, ops int) error {
	fmt.Printf("# LD concurrent throughput (%s) — wall time, %d ops/client\n", label, ops)
	results, err := ldmicro.RunConcurrentSuite(open, clients, ldmicro.ConcurrentConfig{OpsPerClient: ops})
	if err != nil {
		return err
	}
	base := make(map[string]float64)
	for _, r := range results {
		line := r.String()
		if r.Clients == clients[0] {
			base[r.Name] = r.OpsPerSec()
		} else if b := base[r.Name]; b > 0 {
			line += fmt.Sprintf("  (%.2fx vs %d)", r.OpsPerSec()/b, clients[0])
		}
		fmt.Println(line)
	}
	return nil
}

// runShardBench measures all-write throughput across the MapShards ×
// clients matrix, each cell on a fresh in-process LLD. Writes go to a
// Compress-hinted working set, so every write carries real compression and
// checksum CPU — the work the striped write path runs outside the instance
// lock, and therefore the component that scales with the stripe count.
func runShardBench(ops int) error {
	newDisk := func(shards int) (ld.Disk, func() error, error) {
		d := disk.New(disk.DefaultConfig(64 << 20))
		o := lld.DefaultOptions()
		o.CompressBandwidth = 0 // wall-time benchmark; no virtual CPU charge
		o.MapShards = shards
		if err := lld.Format(d, o); err != nil {
			return nil, nil, err
		}
		l, err := lld.Open(d, o)
		if err != nil {
			return nil, nil, err
		}
		return l, func() error { return l.Shutdown(true) }, nil
	}
	fmt.Printf("# LD write scaling vs map shards — all-write, compress-hinted, wall time, %d ops/client\n", ops)
	results, err := ldmicro.RunShardSweep(newDisk, ldmicro.ShardSweepConfig{
		Base: ldmicro.ConcurrentConfig{OpsPerClient: ops},
	})
	if err != nil {
		return err
	}
	base := make(map[int]float64) // client count -> ops/s at one stripe
	for _, r := range results {
		line := r.String()
		if r.Shards == 1 {
			base[r.Clients] = r.OpsPerSec()
		} else if b := base[r.Clients]; b > 0 {
			line += fmt.Sprintf("  (%.2fx vs 1 shard)", r.OpsPerSec()/b)
		}
		fmt.Println(line)
	}
	return nil
}

// runLaneBench measures all-write throughput across the SegmentLanes ×
// clients matrix, each cell on a fresh in-process LLD whose backend sleeps
// a real wall-clock latency per media write. That latency is what the
// multi-lane seal pipeline overlaps: at one lane every seal pays it inline
// under the instance lock, so the ratio column is the pipeline's win.
func runLaneBench(ops int, clients []int, lat time.Duration) error {
	// Sized so the sweep's total write volume never drains the free pool:
	// cleaning serializes all lanes and has its own benchmark (-cleanbench).
	capacity := int64(256 << 20)
	newDisk := func(lanes int) (ld.Disk, func() error, error) {
		b := &ldmicro.SlowBackend{
			Backend:      disk.New(disk.DefaultConfig(capacity)),
			WriteLatency: lat,
		}
		o := lld.DefaultOptions()
		o.CompressBandwidth = 0 // wall-time benchmark; no virtual CPU charge
		o.MapShards = 4
		o.SegmentLanes = lanes
		if err := lld.Format(b, o); err != nil {
			return nil, nil, err
		}
		l, err := lld.Open(b, o)
		if err != nil {
			return nil, nil, err
		}
		return l, func() error { return l.Shutdown(true) }, nil
	}
	fmt.Printf("# LD write scaling vs segment lanes — all-write, %v per media write, %d ops/client\n", lat, ops)
	results, err := ldmicro.RunLaneSweep(newDisk, ldmicro.LaneSweepConfig{
		Clients: clients,
		Base:    ldmicro.ConcurrentConfig{OpsPerClient: ops},
	})
	if err != nil {
		return err
	}
	base := make(map[int]float64) // client count -> ops/s at one lane
	for _, r := range results {
		line := r.String()
		if r.Lanes == 1 {
			base[r.Clients] = r.OpsPerSec()
		} else if b := base[r.Clients]; b > 0 {
			line += fmt.Sprintf("  (%.2fx vs 1 lane)", r.OpsPerSec()/b)
		}
		fmt.Println(line)
	}
	return nil
}

func main() {
	scale := flag.Int("scale", 10, "divide the paper's workload sizes by this factor (1 = full size)")
	list := flag.Bool("list", false, "list available experiments and exit")
	remote := flag.String("remote", "", "run LD microbenchmarks against a netld server at this address")
	micro := flag.Bool("micro", false, "run LD microbenchmarks against an in-process LLD")
	microFiles := flag.Int("micro-files", 500, "small-file count for the microbenchmarks")
	conc := flag.Bool("conc", false, "run the multi-client throughput suite (in-process, or against -remote)")
	concClients := flag.String("clients", "1,4,16", "comma-separated client counts for -conc")
	concOps := flag.Int("conc-ops", 2000, "operations per client for -conc")
	batchbench := flag.Bool("batchbench", false, "run the per-block vs batched read scan (in-process, or against -remote)")
	batchBlocks := flag.Int("batch-blocks", 64, "working-set size for -batchbench")
	batchRounds := flag.Int("batch-rounds", 8, "sweeps per mode for -batchbench")
	cleanbench := flag.Bool("cleanbench", false, "run the sync-vs-background cleaner writer-stall comparison")
	cleanOps := flag.Int("clean-ops", 500, "rewrites per client for -cleanbench")
	scrubbench := flag.Bool("scrubbench", false, "run the with-vs-without background scrubber writer-stall comparison")
	scrubOps := flag.Int("scrub-ops", 500, "rewrites per client for -scrubbench")
	shardbench := flag.Bool("shardbench", false, "run the write-scaling sweep across block-map lock stripes (1/4/16 clients x 1/4/8 shards)")
	shardOps := flag.Int("shard-ops", 2000, "writes per client for -shardbench")
	lanebench := flag.Bool("lanebench", false, "run the write-scaling sweep across open segment lanes (1/2/4 lanes, slow media writes)")
	laneOps := flag.Int("lane-ops", 2000, "writes per client for -lanebench")
	laneClients := flag.String("lane-clients", "1,4,16", "comma-separated client counts for -lanebench")
	laneLatency := flag.Duration("lane-latency", 200*time.Microsecond, "wall-clock cost per media write for -lanebench")
	stripeBench := flag.Bool("stripe", false, "run the striped-backend throughput sweep (virtual clock, 1/2/4/8 legs)")
	mirrorBench := flag.Bool("mirror", false, "run the mirrored-backend overhead sweep (virtual clock, 1/2/3 replicas)")
	mdiskBytes := flag.Int64("mdisk-bytes", 8<<20, "bytes moved per phase in the -stripe/-mirror sweeps")
	tortureSmoke := flag.Bool("torture", false, "run the bounded power-failure torture smoke (all topologies)")
	tortureSeed := flag.Int64("torture-seed", 1, "master seed for -torture")
	tortureOps := flag.Int("torture-ops", 160, "workload length per crash point for -torture")
	torturePoints := flag.Int("torture-points", 40, "max crash points per topology for -torture (0 = all)")
	tortureReplay := flag.String("torture-replay", "", "replay one torture reproducer line and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ldbench [-scale N] [-list] <experiment>... | all\n")
		fmt.Fprintf(os.Stderr, "       ldbench -remote addr | -micro   (LD microbenchmarks)\n")
		fmt.Fprintf(os.Stderr, "       ldbench -conc [-clients 1,4,16] [-remote addr]   (multi-client throughput)\n")
		fmt.Fprintf(os.Stderr, "       ldbench -batchbench [-remote addr] [-batch-blocks N]   (per-block vs batched reads)\n")
		fmt.Fprintf(os.Stderr, "       ldbench -cleanbench [-clean-ops N]   (cleaner writer-stall quantiles)\n")
		fmt.Fprintf(os.Stderr, "       ldbench -scrubbench [-scrub-ops N]   (background-scrubber overhead)\n")
		fmt.Fprintf(os.Stderr, "       ldbench -shardbench [-shard-ops N]   (write scaling vs map-shard count)\n")
		fmt.Fprintf(os.Stderr, "       ldbench -lanebench [-lane-clients 1,4,16] [-lane-ops N]   (write scaling vs segment-lane count)\n")
		fmt.Fprintf(os.Stderr, "       ldbench -stripe | -mirror [-mdisk-bytes N]   (multi-disk throughput, virtual clock)\n")
		fmt.Fprintf(os.Stderr, "       ldbench -torture [-torture-seed N] [-torture-points N]   (power-failure torture smoke)\n")
		fmt.Fprintf(os.Stderr, "       ldbench -torture-replay \"seed=... point=...\"   (replay one torture reproducer)\n\nExperiments:\n")
		for _, e := range harness.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.ID, e.Title)
		}
	}
	flag.Parse()

	if *tortureReplay != "" {
		if err := runTortureReplay(*tortureReplay); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *tortureSmoke {
		if err := runTortureSmoke(*tortureSeed, *tortureOps, *torturePoints); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *stripeBench || *mirrorBench {
		if err := runMultiDisk(*stripeBench, *mirrorBench, *mdiskBytes); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *batchbench {
		var open ldmicro.OpenFunc
		label := "local in-process LLD"
		if *remote != "" {
			label = "remote " + *remote
			addr := *remote
			open = func() (ld.Disk, func() error, error) {
				c, err := client.Dial(addr, client.Options{})
				if err != nil {
					return nil, nil, err
				}
				return c, c.Close, nil
			}
		} else {
			d, err := localMicroDisk()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
				os.Exit(1)
			}
			open = ldmicro.SingleHandle(d)
		}
		if err := runBatchBench(open, label, *batchBlocks, *batchRounds); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cleanbench {
		if err := runCleanBench(4, *cleanOps); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *scrubbench {
		if err := runScrubBench(4, *scrubOps); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *shardbench {
		if err := runShardBench(*shardOps); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *lanebench {
		clients, err := parseClients(*laneClients)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(2)
		}
		if err := runLaneBench(*laneOps, clients, *laneLatency); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *conc {
		clients, err := parseClients(*concClients)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(2)
		}
		var open ldmicro.OpenFunc
		label := "local in-process LLD"
		if *remote != "" {
			label = "remote " + *remote
			open = func() (ld.Disk, func() error, error) {
				c, err := client.Dial(*remote, client.Options{})
				if err != nil {
					return nil, nil, err
				}
				return c, c.Close, nil
			}
		} else {
			d, err := localMicroDisk()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
				os.Exit(1)
			}
			open = ldmicro.SingleHandle(d)
		}
		if err := runConcurrent(open, label, clients, *concOps); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *remote != "" {
		c, err := client.Dial(*remote, client.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		defer c.Close()
		if err := runMicro(c, "remote "+*remote, *microFiles); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *micro {
		d, err := localMicroDisk()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		if err := runMicro(d, "local in-process LLD", *microFiles); err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var todo []harness.Experiment
	if len(args) == 1 && args[0] == "all" {
		todo = harness.All()
	} else {
		for _, id := range args {
			e, ok := harness.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "ldbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	cfg := harness.Config{Scale: *scale}
	fmt.Printf("# The Logical Disk (SOSP '93) reproduction — scale 1/%d of the paper's workloads\n", *scale)
	fmt.Printf("# partition %d MB, large file %d MB, cache %d KB\n\n",
		cfg.PartitionBytes()>>20, cfg.LargeFileBytes()>>20, harness.CacheBytes/1024)
	for _, e := range todo {
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s ran in %.1fs wall time)\n\n", e.ID, time.Since(start).Seconds())
	}
}
