// Command ldbench reproduces every table and in-text experiment from the
// evaluation of "The Logical Disk" (SOSP 1993) on the simulated disk.
//
// Usage:
//
//	ldbench -list             # show available experiments
//	ldbench table4 table5     # run specific experiments
//	ldbench all               # run everything
//	ldbench -scale 1 all      # full paper-sized workloads (slower)
//
// Results are printed as paper-style tables; throughput numbers come from
// the simulated disk's virtual clock.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	scale := flag.Int("scale", 10, "divide the paper's workload sizes by this factor (1 = full size)")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ldbench [-scale N] [-list] <experiment>... | all\n\nExperiments:\n")
		for _, e := range harness.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.ID, e.Title)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var todo []harness.Experiment
	if len(args) == 1 && args[0] == "all" {
		todo = harness.All()
	} else {
		for _, id := range args {
			e, ok := harness.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "ldbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	cfg := harness.Config{Scale: *scale}
	fmt.Printf("# The Logical Disk (SOSP '93) reproduction — scale 1/%d of the paper's workloads\n", *scale)
	fmt.Printf("# partition %d MB, large file %d MB, cache %d KB\n\n",
		cfg.PartitionBytes()>>20, cfg.LargeFileBytes()>>20, harness.CacheBytes/1024)
	for _, e := range todo {
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s ran in %.1fs wall time)\n\n", e.ID, time.Since(start).Seconds())
	}
}
