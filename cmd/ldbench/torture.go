package main

import (
	"fmt"
	"os"

	"repro/internal/torture"
)

// runTortureReplay re-executes a single reproducer line printed by a
// failing torture run (or CI log) and reports whether the recovered
// state verifies now.
func runTortureReplay(repro string) error {
	fmt.Printf("replaying: %s\n", repro)
	if err := torture.Replay(repro); err != nil {
		return err
	}
	fmt.Println("replay: recovered state verified clean")
	return nil
}

// runTortureSmoke is the bounded power-failure torture smoke: every
// standard topology at one seed, with the per-run crash-point count
// capped so the whole sweep stays CI-sized. Failures print the
// replayable reproducer line and fail the run.
func runTortureSmoke(seed int64, ops, maxPoints int) error {
	failures := 0
	for _, cfg := range torture.DefaultConfigs(seed) {
		cfg.Ops = ops
		cfg.MaxPoints = maxPoints
		res, err := torture.Run(cfg)
		if err != nil {
			return fmt.Errorf("torture %s: %w", cfg.Kind, err)
		}
		status := "ok"
		if len(res.Failures) > 0 {
			status = fmt.Sprintf("FAIL (%d)", len(res.Failures))
		}
		fmt.Printf("torture %-8s seed=%d points=%d (sector=%d op=%d site=%d rebuild=%d)  %s\n",
			cfg.Kind, seed, res.Points,
			res.ByKind[torture.PointSector], res.ByKind[torture.PointOp],
			res.ByKind[torture.PointSite], res.ByKind[torture.PointRebuild],
			status)
		for _, f := range res.Failures {
			failures++
			fmt.Fprintf(os.Stderr, "torture FAILURE: %v\n  reproduce with: ldbench -torture-replay %q\n", f.Err, f.Repro)
		}
	}
	if failures > 0 {
		return fmt.Errorf("torture: %d crash points failed verification", failures)
	}
	fmt.Println("torture: all crash points recovered and verified")
	return nil
}
