// Command lddump inspects an LLD-formatted disk image: superblock
// geometry, checkpoint slots, and segment summaries (the on-disk log of
// LLD's metadata). With -remote it inspects a live ldserver instead,
// walking the logical state (lists, blocks, sizes) through the netld
// protocol.
//
// With -verify it runs the offline integrity walk instead: every block
// payload named by a valid segment summary is checked against its recorded
// checksum, rotted summaries are distinguished from benign torn tails, and
// the process exits nonzero if any fault is found.
//
// Multi-disk image sets written by mkld -mirror/-stripe (files named
// <image>.0 … <image>.N-1) are inspected with the same flags on lddump:
// the set is composed back into one logical backend first.
//
// Usage:
//
//	lddump [-v] disk.img
//	lddump -verify disk.img
//	lddump [-v|-verify] -mirror 2 disk.img      # reads disk.img.0, disk.img.1
//	lddump [-v|-verify] -stripe 4 disk.img      # reads disk.img.0 … disk.img.3
//	lddump [-v] -remote localhost:7093
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/disk"
	"repro/internal/lld"
	"repro/internal/mdisk"
	"repro/internal/netld/client"
)

func main() {
	verbose := flag.Bool("v", false, "list every block entry and tuple (image) or every block (remote)")
	remote := flag.String("remote", "", "inspect a live netld server at this address instead of an image")
	verify := flag.Bool("verify", false, "verify every block payload checksum instead of dumping; exit 1 on any fault")
	mirrorN := flag.Int("mirror", 0, "compose the image from N mirror replicas <image>.0 … <image>.N-1")
	stripeN := flag.Int("stripe", 0, "compose the image from N stripe legs <image>.0 … <image>.N-1")
	flag.Parse()

	if *remote != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: lddump [-v] -remote <addr>")
			os.Exit(2)
		}
		if err := dumpRemote(os.Stdout, *remote, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lddump [-v|-verify] <image> | lddump [-v] -remote <addr>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	d, err := loadBackend(path, *mirrorN, *stripeN)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
		os.Exit(1)
	}
	if *verify {
		faults, err := lld.Verify(d, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
			os.Exit(1)
		}
		if faults > 0 {
			os.Exit(1)
		}
		return
	}
	if err := lld.Dump(d, os.Stdout, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
		os.Exit(1)
	}
}

// loadBackend opens the image (or image set) as the backend lld should
// read: a plain disk, an N-way mirror over <path>.0 …, or an N-leg
// stripe over the same naming.
func loadBackend(path string, mirrorN, stripeN int) (disk.Backend, error) {
	if mirrorN > 0 && stripeN > 0 {
		return nil, fmt.Errorf("-mirror and -stripe are mutually exclusive")
	}
	n := mirrorN + stripeN
	if n == 0 {
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		d := disk.New(disk.DefaultConfig(info.Size()))
		if err := d.LoadImage(path); err != nil {
			return nil, err
		}
		return d, nil
	}
	kids := make([]disk.Backend, n)
	for i := range kids {
		p := fmt.Sprintf("%s.%d", path, i)
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		d := disk.New(disk.DefaultConfig(info.Size()))
		if err := d.LoadImage(p); err != nil {
			return nil, err
		}
		kids[i] = d
	}
	if mirrorN > 0 {
		return mdisk.NewMirror(kids...)
	}
	return mdisk.NewStripe(kids...)
}

// dumpRemote walks a live server's logical state through the LD
// interface: every list in list-of-lists order, its block count and
// total bytes, and (verbose) each block's id and stored size. Each list
// is fetched as one batched OpReadMulti sweep (two round trips) rather
// than one round trip per block, and a damaged block degrades to a
// per-entry note instead of aborting the walk.
func dumpRemote(w io.Writer, addr string, verbose bool) error {
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Fprintf(w, "remote logical disk at %s\n", addr)
	fmt.Fprintf(w, "max block size: %d bytes\n", c.MaxBlockSize())
	lists, err := c.Lists()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "lists: %d\n", len(lists))
	var totalBlocks, totalBytes, totalBad int64
	for _, lid := range lists {
		entries, err := c.ReadListBlocks(lid)
		if err != nil {
			return fmt.Errorf("list %d: %w", lid, err)
		}
		var bytes, bad int64
		for _, e := range entries {
			if e.Err != nil {
				bad++
				continue
			}
			bytes += int64(len(e.Data))
		}
		totalBlocks += int64(len(entries))
		totalBytes += bytes
		totalBad += bad
		fmt.Fprintf(w, "  L%-6d %6d blocks %10d bytes", lid, len(entries), bytes)
		if bad > 0 {
			fmt.Fprintf(w, "  (%d unreadable)", bad)
		}
		fmt.Fprintln(w)
		if verbose {
			for _, e := range entries {
				if e.Err != nil {
					fmt.Fprintf(w, "    B%-8d unreadable: %v\n", e.Block, e.Err)
					continue
				}
				fmt.Fprintf(w, "    B%-8d %8d bytes\n", e.Block, len(e.Data))
			}
		}
	}
	fmt.Fprintf(w, "total: %d blocks, %d bytes", totalBlocks, totalBytes)
	if totalBad > 0 {
		fmt.Fprintf(w, ", %d unreadable", totalBad)
	}
	fmt.Fprintln(w)
	return c.Shutdown(true)
}
