// Command lddump inspects an LLD-formatted disk image: superblock
// geometry, checkpoint slots, and segment summaries (the on-disk log of
// LLD's metadata). With -remote it inspects a live ldserver instead,
// walking the logical state (lists, blocks, sizes) through the netld
// protocol.
//
// With -verify it runs the offline integrity walk instead: every block
// payload named by a valid segment summary is checked against its recorded
// checksum, rotted summaries are distinguished from benign torn tails, and
// the process exits nonzero if any fault is found.
//
// Usage:
//
//	lddump [-v] disk.img
//	lddump -verify disk.img
//	lddump [-v] -remote localhost:7093
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/disk"
	"repro/internal/lld"
	"repro/internal/netld/client"
)

func main() {
	verbose := flag.Bool("v", false, "list every block entry and tuple (image) or every block (remote)")
	remote := flag.String("remote", "", "inspect a live netld server at this address instead of an image")
	verify := flag.Bool("verify", false, "verify every block payload checksum instead of dumping; exit 1 on any fault")
	flag.Parse()

	if *remote != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: lddump [-v] -remote <addr>")
			os.Exit(2)
		}
		if err := dumpRemote(os.Stdout, *remote, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lddump [-v|-verify] <image> | lddump [-v] -remote <addr>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	info, err := os.Stat(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
		os.Exit(1)
	}
	d := disk.New(disk.DefaultConfig(info.Size()))
	if err := d.LoadImage(path); err != nil {
		fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
		os.Exit(1)
	}
	if *verify {
		faults, err := lld.Verify(d, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
			os.Exit(1)
		}
		if faults > 0 {
			os.Exit(1)
		}
		return
	}
	if err := lld.Dump(d, os.Stdout, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
		os.Exit(1)
	}
}

// dumpRemote walks a live server's logical state through the LD
// interface: every list in list-of-lists order, its block count and
// total bytes, and (verbose) each block's id and stored size.
func dumpRemote(w io.Writer, addr string, verbose bool) error {
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Fprintf(w, "remote logical disk at %s\n", addr)
	fmt.Fprintf(w, "max block size: %d bytes\n", c.MaxBlockSize())
	lists, err := c.Lists()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "lists: %d\n", len(lists))
	var totalBlocks, totalBytes int64
	for _, lid := range lists {
		ids, err := c.ListBlocks(lid)
		if err != nil {
			return fmt.Errorf("list %d: %w", lid, err)
		}
		var bytes int64
		for _, b := range ids {
			n, err := c.BlockSize(b)
			if err != nil {
				return fmt.Errorf("block %d: %w", b, err)
			}
			bytes += int64(n)
		}
		totalBlocks += int64(len(ids))
		totalBytes += bytes
		fmt.Fprintf(w, "  L%-6d %6d blocks %10d bytes\n", lid, len(ids), bytes)
		if verbose {
			for _, b := range ids {
				n, err := c.BlockSize(b)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "    B%-8d %8d bytes\n", b, n)
			}
		}
	}
	fmt.Fprintf(w, "total: %d blocks, %d bytes\n", totalBlocks, totalBytes)
	return c.Shutdown(true)
}
