// Command lddump inspects an LLD-formatted disk image: superblock
// geometry, checkpoint slots, and segment summaries (the on-disk log of
// LLD's metadata).
//
// Usage:
//
//	lddump [-v] disk.img
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/disk"
	"repro/internal/lld"
)

func main() {
	verbose := flag.Bool("v", false, "list every block entry and tuple")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lddump [-v] <image>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	info, err := os.Stat(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
		os.Exit(1)
	}
	d := disk.New(disk.DefaultConfig(info.Size()))
	if err := d.LoadImage(path); err != nil {
		fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
		os.Exit(1)
	}
	if err := lld.Dump(d, os.Stdout, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "lddump: %v\n", err)
		os.Exit(1)
	}
}
