package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"64", 64, false},
		{"4K", 4096, false},
		{"4k", 4096, false},
		{"32M", 32 << 20, false},
		{"2G", 2 << 30, false},
		{"2g", 2 << 30, false},
		{"", 0, true},
		{"12X", 0, true},
		{"M", 0, true},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.err != (err != nil) {
			t.Errorf("parseSize(%q): err=%v", c.in, err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("parseSize(%q)=%d want %d", c.in, got, c.want)
		}
	}
}
