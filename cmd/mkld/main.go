// Command mkld creates a disk image file formatted with the log-structured
// Logical Disk layout (superblock, checkpoint region, segments), optionally
// with a MINIX LLD file system on top.
//
// Usage:
//
//	mkld -size 64M [-segment 512K] [-fs] disk.img
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/disk"
	"repro/internal/lld"
	"repro/internal/minixfs"
)

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

func main() {
	size := flag.String("size", "64M", "disk capacity (K/M/G suffixes)")
	segment := flag.String("segment", "512K", "LLD segment size")
	withFS := flag.Bool("fs", false, "also create a MINIX LLD file system (per-file lists)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mkld [-size N] [-segment N] [-fs] <image>")
		os.Exit(2)
	}
	capacity, err := parseSize(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkld: bad size: %v\n", err)
		os.Exit(2)
	}
	segSize, err := parseSize(*segment)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkld: bad segment size: %v\n", err)
		os.Exit(2)
	}

	d := disk.New(disk.DefaultConfig(capacity))
	opts := lld.DefaultOptions()
	opts.SegmentSize = int(segSize)
	if err := lld.Format(d, opts); err != nil {
		fmt.Fprintf(os.Stderr, "mkld: format: %v\n", err)
		os.Exit(1)
	}
	l, err := lld.Open(d, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkld: open: %v\n", err)
		os.Exit(1)
	}
	if *withFS {
		be, err := minixfs.FormatLD(l, 4096, minixfs.LDConfig{PerFileLists: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkld: fs backend: %v\n", err)
			os.Exit(1)
		}
		fs, err := minixfs.Mkfs(be, minixfs.Config{BlockSize: 4096})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkld: mkfs: %v\n", err)
			os.Exit(1)
		}
		if err := fs.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mkld: close fs: %v\n", err)
			os.Exit(1)
		}
	}
	if err := l.Shutdown(true); err != nil {
		fmt.Fprintf(os.Stderr, "mkld: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := d.SaveImage(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "mkld: save: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mkld: %s: %d MB, %d segments of %d KB%s\n",
		flag.Arg(0), capacity>>20, l.SegmentCount(), segSize>>10,
		map[bool]string{true: ", MINIX LLD file system", false: ""}[*withFS])
}
