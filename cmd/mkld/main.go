// Command mkld creates a disk image file formatted with the log-structured
// Logical Disk layout (superblock, checkpoint region, segments), optionally
// with a MINIX LLD file system on top.
//
// With -mirror N or -stripe N the logical disk is formatted over a
// multi-disk backend (internal/mdisk) and the images are written as
// disk.img.0 … disk.img.N-1, one file per backing disk. -size remains
// the logical capacity: each mirror replica holds the full image, each
// stripe leg holds 1/N of it.
//
// Usage:
//
//	mkld -size 64M [-segment 512K] [-fs] disk.img
//	mkld -size 64M -mirror 2 disk.img     # writes disk.img.0, disk.img.1
//	mkld -size 64M -stripe 4 disk.img     # writes disk.img.0 … disk.img.3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/disk"
	"repro/internal/lld"
	"repro/internal/mdisk"
	"repro/internal/minixfs"
)

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

func main() {
	size := flag.String("size", "64M", "logical disk capacity (K/M/G suffixes)")
	segment := flag.String("segment", "512K", "LLD segment size")
	withFS := flag.Bool("fs", false, "also create a MINIX LLD file system (per-file lists)")
	mirrorN := flag.Int("mirror", 0, "mirror the logical disk over N replicas (images <image>.0 … <image>.N-1)")
	stripeN := flag.Int("stripe", 0, "stripe the logical disk over N legs (images <image>.0 … <image>.N-1)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mkld [-size N] [-segment N] [-fs] [-mirror N | -stripe N] <image>")
		os.Exit(2)
	}
	if *mirrorN > 0 && *stripeN > 0 {
		fmt.Fprintln(os.Stderr, "mkld: -mirror and -stripe are mutually exclusive")
		os.Exit(2)
	}
	capacity, err := parseSize(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkld: bad size: %v\n", err)
		os.Exit(2)
	}
	segSize, err := parseSize(*segment)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkld: bad segment size: %v\n", err)
		os.Exit(2)
	}

	var (
		d    disk.Backend
		kids []*disk.Disk
		kind string
	)
	switch {
	case *mirrorN > 0:
		kids = newDisks(*mirrorN, capacity)
		m, err := mdisk.NewMirror(backends(kids)...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkld: mirror: %v\n", err)
			os.Exit(1)
		}
		d, kind = m, fmt.Sprintf(", %d-way mirror", *mirrorN)
	case *stripeN > 0:
		per := capacity / int64(*stripeN)
		kids = newDisks(*stripeN, per)
		s, err := mdisk.NewStripe(backends(kids)...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkld: stripe: %v\n", err)
			os.Exit(1)
		}
		defer s.Close()
		d, kind = s, fmt.Sprintf(", %d-leg stripe", *stripeN)
	default:
		one := disk.New(disk.DefaultConfig(capacity))
		kids = []*disk.Disk{one}
		d = one
	}
	opts := lld.DefaultOptions()
	opts.SegmentSize = int(segSize)
	if err := lld.Format(d, opts); err != nil {
		fmt.Fprintf(os.Stderr, "mkld: format: %v\n", err)
		os.Exit(1)
	}
	l, err := lld.Open(d, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkld: open: %v\n", err)
		os.Exit(1)
	}
	if *withFS {
		be, err := minixfs.FormatLD(l, 4096, minixfs.LDConfig{PerFileLists: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkld: fs backend: %v\n", err)
			os.Exit(1)
		}
		fs, err := minixfs.Mkfs(be, minixfs.Config{BlockSize: 4096})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkld: mkfs: %v\n", err)
			os.Exit(1)
		}
		if err := fs.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mkld: close fs: %v\n", err)
			os.Exit(1)
		}
	}
	if err := l.Shutdown(true); err != nil {
		fmt.Fprintf(os.Stderr, "mkld: shutdown: %v\n", err)
		os.Exit(1)
	}
	if len(kids) == 1 {
		if err := kids[0].SaveImage(flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "mkld: save: %v\n", err)
			os.Exit(1)
		}
	} else {
		for i, k := range kids {
			path := fmt.Sprintf("%s.%d", flag.Arg(0), i)
			if err := k.SaveImage(path); err != nil {
				fmt.Fprintf(os.Stderr, "mkld: save %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("mkld: %s: %d MB, %d segments of %d KB%s%s\n",
		flag.Arg(0), d.Capacity()>>20, l.SegmentCount(), segSize>>10, kind,
		map[bool]string{true: ", MINIX LLD file system", false: ""}[*withFS])
}

func newDisks(n int, capacity int64) []*disk.Disk {
	out := make([]*disk.Disk, n)
	for i := range out {
		out[i] = disk.New(disk.DefaultConfig(capacity))
	}
	return out
}

func backends(kids []*disk.Disk) []disk.Backend {
	out := make([]disk.Backend, len(kids))
	for i, k := range kids {
		out[i] = k
	}
	return out
}
