// Quickstart: a tour of the Logical Disk interface from "The Logical Disk"
// (SOSP 1993) — logical block numbers, block lists, atomic recovery units,
// multiple block sizes, and crash recovery — on a simulated disk.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ld"
	"repro/internal/lld"
)

func main() {
	// Build the stack: simulated HP-C3010-like disk + log-structured LD.
	stack, err := core.New(core.Config{DiskBytes: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	disk := stack.LD()
	fmt.Println("Logical Disk ready:", stack.LLD.SegmentCount(), "segments of",
		stack.LLD.SegmentSize()/1024, "KB")

	// Lists express logical relationships; LD clusters list neighbors
	// physically. Create one list per "file".
	fileA, err := disk.NewList(ld.NilList, ld.ListHints{Cluster: true})
	if err != nil {
		log.Fatal(err)
	}

	// Allocate logical blocks on the list and write them. The logical
	// numbers never change, no matter where LD places the data.
	var blocks []ld.BlockID
	pred := ld.NilBlock
	for i := 0; i < 4; i++ {
		b, err := disk.NewBlock(fileA, pred)
		if err != nil {
			log.Fatal(err)
		}
		if err := disk.Write(b, []byte(fmt.Sprintf("block %d of file A", i))); err != nil {
			log.Fatal(err)
		}
		blocks = append(blocks, b)
		pred = b
	}
	fmt.Println("wrote blocks", blocks, "on list", fileA)

	// Multiple block sizes: a 64-byte "i-node" next to 4-KB data blocks.
	inode, err := disk.NewBlock(fileA, ld.NilBlock)
	if err != nil {
		log.Fatal(err)
	}
	if err := disk.Write(inode, make([]byte, 64)); err != nil {
		log.Fatal(err)
	}
	sz, _ := disk.BlockSize(inode)
	fmt.Println("i-node block", inode, "stores", sz, "bytes")

	// Atomic recovery units: create a file and update its directory as one
	// indivisible operation (the paper's motivating example for ARUs).
	if err := disk.BeginARU(); err != nil {
		log.Fatal(err)
	}
	dirBlock, _ := disk.NewBlock(fileA, blocks[len(blocks)-1])
	if err := disk.Write(dirBlock, []byte("directory entry for new file")); err != nil {
		log.Fatal(err)
	}
	if err := disk.EndARU(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ARU committed: directory block", dirBlock)

	// Durability is explicit: Flush survives power failures.
	if err := disk.Flush(ld.FailPower); err != nil {
		log.Fatal(err)
	}

	// Crash the host (in-memory state lost) and recover: LD rebuilds its
	// block-number map and list table with one sweep over the segment
	// summaries (paper §3.6).
	if err := disk.Shutdown(false); err != nil {
		log.Fatal(err)
	}
	l2, err := lld.Open(stack.Disk, lld.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered after crash:", l2.Stats().RecoverySweepSegments, "summaries swept")

	got, err := l2.ListBlocks(fileA)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := l2.Read(got[1], buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("list %d has %d blocks; block %d reads %q\n", fileA, len(got), got[1], buf[:n])
	fmt.Println("virtual disk time elapsed:", stack.Disk.Now())
}
