// Multiple file systems on one Logical Disk — the scenario of the paper's
// Figure 1: a UNIX-style file system (MINIX) and a database-style file
// system (a B-tree) share a single LD implementation, each using the
// facilities it needs (per-file lists and Flush for MINIX; atomic recovery
// units and offset addressing for the B-tree).
package main

import (
	"fmt"
	"log"

	"repro/internal/btreefs"
	"repro/internal/core"
	"repro/internal/ld"
	"repro/internal/minixfs"
)

func main() {
	stack, err := core.New(core.Config{DiskBytes: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	l := stack.LLD

	// File system #1: MINIX on LD, with one LD list per file.
	be, err := minixfs.FormatLD(l, 4096, minixfs.LDConfig{PerFileLists: true})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := minixfs.Mkfs(be, minixfs.Config{BlockSize: 4096, NInodes: 1024})
	if err != nil {
		log.Fatal(err)
	}
	f, err := fs.Create("/notes.txt")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("the file system does file management;\nLD does disk management.\n"), 0); err != nil {
		log.Fatal(err)
	}
	f.Close()
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("MINIX LLD: wrote /notes.txt")

	// File system #2: a B-tree key-value store on the same LD. Each
	// mutation is an atomic recovery unit.
	tree, err := btreefs.Create(l, ld.NilList)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user:%04d", i)
		if err := tree.Put([]byte(key), []byte(fmt.Sprintf("record %d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := tree.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B-tree FS: %d keys, height %d, on LD list %d\n",
		tree.Count(), tree.Height(), tree.List())

	// Both coexist: LD's list of lists holds the MINIX metadata list, the
	// per-file lists, and the tree's list side by side.
	lists, err := l.Lists()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the Logical Disk now holds %d lists shared by two file systems\n", len(lists))

	// Each file system reads its own data back through the shared LD.
	g, err := fs.Open("/notes.txt")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, g.Size())
	g.ReadAt(buf, 0)
	g.Close()
	fmt.Printf("MINIX read back: %q\n", buf[:40])

	v, err := tree.Get([]byte("user:0042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B-tree read back: user:0042 -> %q\n", v)

	// A range scan across the tree, served from the same log as the MINIX
	// file data.
	count := 0
	tree.Range([]byte("user:0100"), []byte("user:0110"), func(k, v []byte) bool {
		count++
		return true
	})
	fmt.Printf("B-tree range scan user:0100..0110 returned %d keys\n", count)

	st := l.Stats()
	fmt.Printf("shared LD stats: %d blocks written, %d segments sealed, %d ARUs committed\n",
		st.BlocksWritten, st.SegmentsSealed, st.ARUs)
}
