// Transparent compression (paper §3.3): a list created with the Compress
// hint stores its blocks compressed inside LLD's variable-sized-block
// segments; the file system above notices nothing except extra effective
// capacity. This example measures the space saved and the throughput cost
// on the virtual clock.
package main

import (
	"fmt"
	"log"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ld"
)

func main() {
	stack, err := core.New(core.Config{DiskBytes: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	l := stack.LLD

	// Two lists: one compressed, one not, holding the same content — text
	// synthesized to the paper's ~60% compression ratio.
	plain, _ := l.NewList(ld.NilList, ld.ListHints{})
	packed, _ := l.NewList(plain, ld.ListHints{Compress: true})
	content := compress.SyntheticData(4096, 0.60, 17)

	const n = 512
	write := func(lid ld.ListID) []ld.BlockID {
		var ids []ld.BlockID
		pred := ld.NilBlock
		for i := 0; i < n; i++ {
			b, err := l.NewBlock(lid, pred)
			if err != nil {
				log.Fatal(err)
			}
			if err := l.Write(b, content); err != nil {
				log.Fatal(err)
			}
			ids = append(ids, b)
			pred = b
		}
		return ids
	}

	before := l.LiveBytes()
	write(plain)
	plainBytes := l.LiveBytes() - before

	before = l.LiveBytes()
	packedIDs := write(packed)
	packedBytes := l.LiveBytes() - before

	fmt.Printf("%d blocks of %d bytes each:\n", n, len(content))
	fmt.Printf("  uncompressed list stores %d KB\n", plainBytes/1024)
	fmt.Printf("  compressed list stores   %d KB (ratio %.2f)\n",
		packedBytes/1024, float64(packedBytes)/float64(plainBytes))

	// Reads decompress transparently.
	buf := make([]byte, 4096)
	nr, err := l.Read(packedIDs[10], buf)
	if err != nil {
		log.Fatal(err)
	}
	same := nr == len(content)
	for i := 0; same && i < nr; i++ {
		same = buf[i] == content[i]
	}
	fmt.Printf("  transparent read back: %d bytes, identical=%v\n", nr, same)

	st := l.Stats()
	fmt.Printf("  LLD compressed %d blocks: %d KB in, %d KB stored\n",
		st.CompressedBlocks, st.CompressInBytes/1024, st.CompressOutBytes/1024)

	// The paper's §4.2 measurement, reproduced by the benchmark harness:
	// compression costs write bandwidth only when it cannot overlap the
	// previous segment write, and costs reads the full decompression time.
	tab, err := harness.CompressBW(harness.Config{Scale: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(tab.Render())
}
