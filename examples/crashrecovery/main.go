// Crash recovery: demonstrates the all-or-nothing semantics of atomic
// recovery units across a mid-operation power failure, including a torn
// segment write, and the difference between a clean shutdown (checkpoint
// fast restart) and a crash (one-sweep recovery).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ld"
	"repro/internal/lld"
)

func main() {
	stack, err := core.New(core.Config{DiskBytes: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	d, l := stack.Disk, stack.LLD

	list, err := l.NewList(ld.NilList, ld.ListHints{})
	if err != nil {
		log.Fatal(err)
	}
	stable, _ := l.NewBlock(list, ld.NilBlock)
	if err := l.Write(stable, []byte("stable state")); err != nil {
		log.Fatal(err)
	}
	if err := l.Flush(ld.FailPower); err != nil {
		log.Fatal(err)
	}
	fmt.Println("flushed a stable state")

	// Begin a multi-block update that must be atomic: a "file create"
	// touching a data block and a directory block.
	if err := l.BeginARU(); err != nil {
		log.Fatal(err)
	}
	fileBlock, _ := l.NewBlock(list, stable)
	if err := l.Write(fileBlock, []byte("new file contents")); err != nil {
		log.Fatal(err)
	}
	if err := l.Write(stable, []byte("directory now references the new file")); err != nil {
		log.Fatal(err)
	}
	// The unit is flushed to disk but never ended: the paper's recovery
	// rule must discard it entirely.
	if err := l.Flush(ld.FailPower); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote an *incomplete* atomic recovery unit to disk")

	// Power failure: in-memory state gone.
	if err := l.Shutdown(false); err != nil {
		log.Fatal(err)
	}
	l2, err := lld.Open(d, lld.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := l2.Read(stable, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash #1 the directory reads %q — the half-done create vanished\n", buf[:n])
	if blocks, _ := l2.ListBlocks(list); len(blocks) != 1 {
		log.Fatalf("list has %d blocks, want 1", len(blocks))
	}

	// Now do it properly: end the unit before the crash.
	if err := l2.BeginARU(); err != nil {
		log.Fatal(err)
	}
	fb, _ := l2.NewBlock(list, stable)
	l2.Write(fb, []byte("new file contents"))
	l2.Write(stable, []byte("directory now references the new file"))
	if err := l2.EndARU(); err != nil {
		log.Fatal(err)
	}
	if err := l2.Flush(ld.FailPower); err != nil {
		log.Fatal(err)
	}

	// This time, tear the *next* write mid-flight too: recovery must keep
	// the committed unit and ignore the torn segment.
	junk, _ := l2.NewBlock(list, fb)
	l2.Write(junk, make([]byte, 4096))
	d.InjectCrashAfterSectors(2)
	_ = l2.Flush(ld.FailPower) // tears
	_ = l2.Shutdown(false)
	d.ClearCrash()

	l3, err := lld.Open(d, lld.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	n, err = l3.Read(stable, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash #2 (torn write) the directory reads %q — the committed ARU survived\n", buf[:n])

	// Clean shutdown vs crash: a checkpointed shutdown restarts without
	// sweeping a single summary.
	if err := l3.Shutdown(true); err != nil {
		log.Fatal(err)
	}
	l4, err := lld.Open(d, lld.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean restart swept %d summaries (crash recovery swept %d)\n",
		l4.Stats().RecoverySweepSegments, l3.Stats().RecoverySweepSegments)
}
